// Policy = grouping + threshold heuristic (paper §4).
//
// assign_thresholds() is the heart of the reproduction: it partitions the
// population with a Grouper, pools each group's training distributions at
// the "central console" (exactly what the paper's homogeneous and partial
// scenarios do), applies the heuristic to each pooled distribution, and
// hands every member of the group the same threshold.
#pragma once

#include <span>
#include <vector>

#include "hids/grouping.hpp"
#include "hids/heuristics.hpp"

namespace monohids::hids {

struct ThresholdAssignment {
  std::vector<double> threshold_of_user;      // per user
  std::vector<double> threshold_of_group;     // per group
  GroupAssignment groups;

  [[nodiscard]] double threshold(std::uint32_t user) const {
    return threshold_of_user.at(user);
  }
};

/// Computes thresholds for every user under (grouper, heuristic). `attack`
/// is forwarded to FN-aware heuristics and may be null otherwise. Group
/// pooling + heuristic evaluation shard over `threads` workers (0 = auto,
/// 1 = serial; full diversity means one group per user, so this is the
/// expensive sweep the FN-aware heuristics run 350 times). Results are
/// identical for every thread count.
[[nodiscard]] ThresholdAssignment assign_thresholds(
    std::span<const stats::EmpiricalDistribution> training_users, const Grouper& grouper,
    const ThresholdHeuristic& heuristic, const AttackModel* attack = nullptr,
    unsigned threads = 0);

/// The `count` users with the lowest assigned thresholds — the paper's
/// "best users" for detecting stealthy anomalies of this feature (Table 2).
/// Group policies hand many users identical thresholds; `tiebreak` (one
/// value per user, typically the personal training quantile) orders those
/// ties by actual host sensitivity. Empty tiebreak falls back to user id.
[[nodiscard]] std::vector<std::uint32_t> best_users(const ThresholdAssignment& assignment,
                                                    std::size_t count,
                                                    std::span<const double> tiebreak = {});

}  // namespace monohids::hids
