// On-host streaming threshold learning.
//
// The paper's full-diversity policy computes thresholds "all done locally"
// on the end host. A deployed agent should not buffer a week of bin counts
// per feature; this learner tracks the target percentile of all six
// features online with bounded memory, using either the exact buffer (the
// reference), a P² estimator (five markers per feature), or a
// Greenwald-Khanna sketch (ε-approximate, answers any percentile).
// bench/ablation_streaming quantifies the accuracy/memory trade-off.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "features/time_series.hpp"
#include "stats/gk_sketch.hpp"
#include "stats/p2_quantile.hpp"

namespace monohids::hids {

enum class EstimatorKind : std::uint8_t {
  Exact,  ///< buffer everything (reference; O(n) memory)
  P2,     ///< Jain-Chlamtac P² (O(1) memory, fixed percentile)
  Gk,     ///< Greenwald-Khanna (O((1/eps) log(eps n)) memory, any percentile)
};

[[nodiscard]] std::string_view name_of(EstimatorKind kind) noexcept;

class OnlineThresholdLearner {
 public:
  /// Learns the `percentile` threshold of each feature. `gk_epsilon` only
  /// applies to the Gk estimator.
  OnlineThresholdLearner(double percentile, EstimatorKind kind, double gk_epsilon = 0.005);

  /// Feeds one finished bin's count for a feature.
  void observe(features::FeatureKind feature, double bin_count);

  /// Feeds a whole series (e.g. a training week) for a feature.
  void observe_series(features::FeatureKind feature, std::span<const double> bins);

  /// Current threshold estimate; requires at least one observation.
  [[nodiscard]] double threshold(features::FeatureKind feature) const;

  [[nodiscard]] std::uint64_t observations(features::FeatureKind feature) const;
  [[nodiscard]] EstimatorKind kind() const noexcept { return kind_; }
  [[nodiscard]] double percentile() const noexcept { return percentile_; }

  /// Approximate resident memory of the estimator state, in bytes — the
  /// deployment cost the streaming estimators exist to bound.
  [[nodiscard]] std::size_t memory_footprint_bytes() const;

 private:
  struct PerFeature {
    std::vector<double> exact;
    std::unique_ptr<stats::P2Quantile> p2;
    std::unique_ptr<stats::GkSketch> gk;
    std::uint64_t count = 0;
  };

  double percentile_;
  EstimatorKind kind_;
  std::array<PerFeature, features::kFeatureCount> state_;
};

}  // namespace monohids::hids
