// Attack campaigns and time-to-detection.
//
// The paper's attacks are constant per-bin volumes; a patient botmaster
// ramps up instead, starting below the noise floor and growing until the
// host is fully recruited ("boiling the frog"). A Campaign describes such a
// ramp; time_to_detection() reports how many bins it runs before the
// detector first fires — the window during which the attacker operates
// freely — and the volume exfiltrated until then.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace monohids::hids {

/// A ramped additive attack: volume(k) = initial + slope * k for the k-th
/// attacked bin (k = 0 at `start_bin`), capped at `peak`.
struct Campaign {
  std::uint64_t start_bin = 0;
  double initial = 1.0;   ///< volume in the first attacked bin
  double slope = 1.0;     ///< per-bin growth
  double peak = 1e18;     ///< growth cap (the botmaster's target rate)

  [[nodiscard]] double volume_at(std::uint64_t bins_since_start) const noexcept;
};

struct DetectionOutcome {
  /// Bins the campaign ran before the first alarm; nullopt = never caught
  /// within the evaluated series.
  std::optional<std::uint64_t> bins_to_detection;

  /// Attack volume delivered before (not including) the alarming bin.
  double volume_before_detection = 0.0;

  [[nodiscard]] bool detected() const noexcept { return bins_to_detection.has_value(); }
};

/// Replays `campaign` on top of the benign series and reports when the
/// threshold detector first fires. `benign` must be the bin series the
/// detector actually watches (test week); bins before start_bin are not
/// attacked and alarms there are ignored (they are false positives, not
/// campaign detections).
[[nodiscard]] DetectionOutcome time_to_detection(std::span<const double> benign,
                                                 double threshold, const Campaign& campaign);

/// Population summary: per-user detection outcomes for the same campaign
/// shape (start_bin interpreted per-series).
[[nodiscard]] std::vector<DetectionOutcome> campaign_outcomes(
    std::span<const std::vector<double>> benign_users, std::span<const double> thresholds,
    const Campaign& campaign);

}  // namespace monohids::hids
