#include "hids/collaborative.hpp"

#include <algorithm>
#include <numeric>

#include "hids/attacker.hpp"
#include "util/error.hpp"

namespace monohids::hids {

std::size_t overlap_count(std::span<const std::uint32_t> a, std::span<const std::uint32_t> b) {
  std::vector<std::uint32_t> sa(a.begin(), a.end());
  std::vector<std::uint32_t> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::vector<std::uint32_t> inter;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(inter));
  return inter.size();
}

namespace {

/// P(at least `quorum` of independent events with probabilities `p` occur),
/// by dynamic programming over the Poisson-binomial distribution.
double at_least_k(std::span<const double> p, std::uint32_t quorum) {
  if (quorum == 0) return 1.0;
  // dp[j] = P(exactly j successes so far) for j < quorum; dp[quorum] is the
  // absorbing ">= quorum" state.
  std::vector<double> dp(quorum + 1, 0.0);
  dp[0] = 1.0;
  for (double pi : p) {
    dp[quorum] += dp[quorum - 1] * pi;  // once over quorum, stay over
    for (std::uint32_t j = quorum - 1; j > 0; --j) {
      dp[j] = dp[j] * (1.0 - pi) + dp[j - 1] * pi;
    }
    dp[0] *= (1.0 - pi);
  }
  return dp[quorum];
}

std::vector<std::uint32_t> sentinel_ids(std::span<const double> thresholds,
                                        std::size_t count) {
  std::vector<std::uint32_t> order(thresholds.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return thresholds[a] < thresholds[b];
  });
  order.resize(std::min(count, order.size()));
  return order;
}

}  // namespace

double collaborative_detection_probability(
    std::span<const stats::EmpiricalDistribution> test_users,
    std::span<const double> thresholds, const CollaborativeConfig& config, double size) {
  MONOHIDS_EXPECT(test_users.size() == thresholds.size(), "user/threshold count mismatch");
  MONOHIDS_EXPECT(config.quorum >= 1, "quorum must be at least 1");
  MONOHIDS_EXPECT(config.sentinel_count >= config.quorum,
                  "quorum larger than the sentinel pool");

  const auto sentinels = sentinel_ids(thresholds, config.sentinel_count);
  std::vector<double> p;
  p.reserve(sentinels.size());
  for (std::uint32_t s : sentinels) {
    p.push_back(naive_detection_probability(test_users[s], thresholds[s], size));
  }
  return at_least_k(p, config.quorum);
}

CollaborativeCurve collaborative_curve(
    std::span<const stats::EmpiricalDistribution> test_users,
    std::span<const double> thresholds, const CollaborativeConfig& config,
    std::span<const double> sizes) {
  CollaborativeCurve curve;
  curve.sizes.assign(sizes.begin(), sizes.end());
  curve.solo = naive_detection_curve(test_users, thresholds, sizes);
  curve.collaborative.reserve(sizes.size());
  for (double size : sizes) {
    curve.collaborative.push_back(
        collaborative_detection_probability(test_users, thresholds, config, size));
  }
  return curve;
}

}  // namespace monohids::hids
