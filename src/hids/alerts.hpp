// Alerts and on-host batching.
//
// Commercial HIDS "batch alerts that are sent periodically to IT"; the
// AlertBatcher models that: alerts queue on the host and flush to the
// central console every `batch_interval` of simulated time. Table 3 counts
// what actually lands at the console.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "features/feature.hpp"
#include "util/sim_time.hpp"

namespace monohids::hids {

struct Alert {
  std::uint32_t user_id = 0;
  features::FeatureKind feature = features::FeatureKind::TcpConnections;
  std::uint64_t bin = 0;
  util::Timestamp bin_start = 0;
  double observed = 0.0;
  double threshold = 0.0;
};

/// A flushed batch of alerts from one host.
struct AlertBatch {
  std::uint32_t user_id = 0;
  util::Timestamp flushed_at = 0;
  std::vector<Alert> alerts;
};

class AlertBatcher {
 public:
  using BatchSink = std::function<void(const AlertBatch&)>;

  /// Batches for `user_id`, flushing every `batch_interval` (simulated).
  AlertBatcher(std::uint32_t user_id, util::Duration batch_interval, BatchSink sink);

  /// Queues one alert; flushes first if the alert's time crosses the next
  /// flush boundary. Alerts must arrive in time order.
  void submit(const Alert& alert);

  /// Flushes any queued alerts at time `now`.
  void flush(util::Timestamp now);

  [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }
  [[nodiscard]] std::uint64_t batches_sent() const noexcept { return batches_sent_; }

 private:
  std::uint32_t user_id_;
  util::Duration interval_;
  BatchSink sink_;
  std::vector<Alert> pending_;
  util::Timestamp next_flush_;
  std::uint64_t batches_sent_ = 0;
};

}  // namespace monohids::hids
