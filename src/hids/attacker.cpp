#include "hids/attacker.hpp"

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace monohids::hids {

double naive_detection_probability(const stats::EmpiricalDistribution& test, double threshold,
                                   double size) {
  MONOHIDS_EXPECT(!test.empty(), "empty test distribution");
  // detection <=> g + size > T <=> NOT (g + size <= T)
  return 1.0 - test.shifted_cdf(size, threshold);
}

std::vector<double> naive_detection_curve(
    std::span<const stats::EmpiricalDistribution> test_users,
    std::span<const double> thresholds, std::span<const double> sizes, unsigned threads) {
  MONOHIDS_EXPECT(test_users.size() == thresholds.size(),
                  "user/threshold count mismatch");
  MONOHIDS_EXPECT(!test_users.empty(), "empty population");
  return util::parallel_map(
      sizes.size(),
      [&](std::size_t s) {
        double acc = 0.0;
        for (std::size_t u = 0; u < test_users.size(); ++u) {
          acc += naive_detection_probability(test_users[u], thresholds[u], sizes[s]);
        }
        return acc / static_cast<double>(test_users.size());
      },
      threads);
}

double ResourcefulAttacker::hidden_volume(const stats::EmpiricalDistribution& profiled,
                                          double threshold) const {
  MONOHIDS_EXPECT(evasion_target > 0.0 && evasion_target <= 1.0,
                  "evasion target must be in (0,1]");
  return profiled.max_hidden_shift(threshold, evasion_target);
}

std::vector<double> ResourcefulAttacker::hidden_volumes(
    std::span<const stats::EmpiricalDistribution> profiled_users,
    std::span<const double> thresholds, unsigned threads) const {
  MONOHIDS_EXPECT(profiled_users.size() == thresholds.size(),
                  "user/threshold count mismatch");
  return util::parallel_map(
      profiled_users.size(),
      [&](std::size_t u) { return hidden_volume(profiled_users[u], thresholds[u]); },
      threads);
}

double ResourcefulAttacker::realized_evasion(const stats::EmpiricalDistribution& test,
                                             double threshold, double volume) {
  MONOHIDS_EXPECT(!test.empty(), "empty test distribution");
  return test.shifted_cdf(volume, threshold);
}

}  // namespace monohids::hids
