#include "hids/attacker.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "stats/kernels.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace monohids::hids {

double naive_detection_probability(const stats::EmpiricalDistribution& test, double threshold,
                                   double size) {
  MONOHIDS_EXPECT(!test.empty(), "empty test distribution");
  // detection <=> g + size > T <=> NOT (g + size <= T)
  return 1.0 - test.shifted_cdf(size, threshold);
}

std::vector<double> naive_detection_curve(
    std::span<const stats::EmpiricalDistribution> test_users,
    std::span<const double> thresholds, std::span<const double> sizes, unsigned threads) {
  MONOHIDS_EXPECT(test_users.size() == thresholds.size(),
                  "user/threshold count mismatch");
  MONOHIDS_EXPECT(!test_users.empty(), "empty population");
  if (stats::kernels::batching_enabled() && !sizes.empty()) {
    // One batched rank call per user fills a user x size probability matrix;
    // the reduction over users then runs in the seed's user order with the
    // seed's 1 - rank/n values, so the curve is bit-identical. An ascending
    // size sweep makes the shifted queries t_u - b descending, so reversing
    // them unlocks the O(n + S) merge-scan.
    const std::size_t U = test_users.size();
    const std::size_t S = sizes.size();
    std::vector<double> prob(U * S);
    util::parallel_for(
        U,
        [&](std::size_t u) {
          MONOHIDS_EXPECT(!test_users[u].empty(), "empty test distribution");
          thread_local std::vector<double> queries;
          thread_local std::vector<std::uint32_t> ranks;
          queries.resize(S);
          ranks.resize(S);
          for (std::size_t s = 0; s < S; ++s) {
            queries[s] = thresholds[u] - sizes[S - 1 - s];
          }
          const auto& ops = stats::kernels::active();
          const bool ascending = std::is_sorted(queries.begin(), queries.end());
          if (ascending) {
            ops.rank_sorted(test_users[u].samples(), queries, 0.0, ranks.data());
          } else {
            for (std::size_t s = 0; s < S; ++s) queries[s] = thresholds[u] - sizes[s];
            ops.rank_unsorted(test_users[u].samples(), queries, 0.0, ranks.data());
          }
          const auto n = static_cast<double>(test_users[u].size());
          double* row = prob.data() + u * S;
          for (std::size_t s = 0; s < S; ++s) {
            const std::uint32_t rank = ascending ? ranks[S - 1 - s] : ranks[s];
            row[s] = 1.0 - static_cast<double>(rank) / n;
          }
        },
        threads);
    return util::parallel_map(
        S,
        [&](std::size_t s) {
          double acc = 0.0;
          for (std::size_t u = 0; u < U; ++u) acc += prob[u * S + s];
          return acc / static_cast<double>(U);
        },
        threads);
  }
  return util::parallel_map(
      sizes.size(),
      [&](std::size_t s) {
        double acc = 0.0;
        for (std::size_t u = 0; u < test_users.size(); ++u) {
          acc += naive_detection_probability(test_users[u], thresholds[u], sizes[s]);
        }
        return acc / static_cast<double>(test_users.size());
      },
      threads);
}

double ResourcefulAttacker::hidden_volume(const stats::EmpiricalDistribution& profiled,
                                          double threshold) const {
  MONOHIDS_EXPECT(evasion_target > 0.0 && evasion_target <= 1.0,
                  "evasion target must be in (0,1]");
  return profiled.max_hidden_shift(threshold, evasion_target);
}

std::vector<double> ResourcefulAttacker::hidden_volumes(
    std::span<const stats::EmpiricalDistribution> profiled_users,
    std::span<const double> thresholds, unsigned threads) const {
  MONOHIDS_EXPECT(profiled_users.size() == thresholds.size(),
                  "user/threshold count mismatch");
  return util::parallel_map(
      profiled_users.size(),
      [&](std::size_t u) { return hidden_volume(profiled_users[u], thresholds[u]); },
      threads);
}

double ResourcefulAttacker::realized_evasion(const stats::EmpiricalDistribution& test,
                                             double threshold, double volume) {
  MONOHIDS_EXPECT(!test.empty(), "empty test distribution");
  return test.shifted_cdf(volume, threshold);
}

}  // namespace monohids::hids
