#include "hids/attacker.hpp"

#include "util/error.hpp"

namespace monohids::hids {

double naive_detection_probability(const stats::EmpiricalDistribution& test, double threshold,
                                   double size) {
  MONOHIDS_EXPECT(!test.empty(), "empty test distribution");
  // detection <=> g + size > T <=> NOT (g + size <= T)
  return 1.0 - test.shifted_cdf(size, threshold);
}

std::vector<double> naive_detection_curve(
    std::span<const stats::EmpiricalDistribution> test_users,
    std::span<const double> thresholds, std::span<const double> sizes) {
  MONOHIDS_EXPECT(test_users.size() == thresholds.size(),
                  "user/threshold count mismatch");
  MONOHIDS_EXPECT(!test_users.empty(), "empty population");
  std::vector<double> curve;
  curve.reserve(sizes.size());
  for (double size : sizes) {
    double acc = 0.0;
    for (std::size_t u = 0; u < test_users.size(); ++u) {
      acc += naive_detection_probability(test_users[u], thresholds[u], size);
    }
    curve.push_back(acc / static_cast<double>(test_users.size()));
  }
  return curve;
}

double ResourcefulAttacker::hidden_volume(const stats::EmpiricalDistribution& profiled,
                                          double threshold) const {
  MONOHIDS_EXPECT(evasion_target > 0.0 && evasion_target <= 1.0,
                  "evasion target must be in (0,1]");
  return profiled.max_hidden_shift(threshold, evasion_target);
}

std::vector<double> ResourcefulAttacker::hidden_volumes(
    std::span<const stats::EmpiricalDistribution> profiled_users,
    std::span<const double> thresholds) const {
  MONOHIDS_EXPECT(profiled_users.size() == thresholds.size(),
                  "user/threshold count mismatch");
  std::vector<double> out;
  out.reserve(profiled_users.size());
  for (std::size_t u = 0; u < profiled_users.size(); ++u) {
    out.push_back(hidden_volume(profiled_users[u], thresholds[u]));
  }
  return out;
}

double ResourcefulAttacker::realized_evasion(const stats::EmpiricalDistribution& test,
                                             double threshold, double volume) {
  MONOHIDS_EXPECT(!test.empty(), "empty test distribution");
  return test.shifted_cdf(volume, threshold);
}

}  // namespace monohids::hids
