#include "hids/online_learner.hpp"

#include "stats/quantile.hpp"
#include "util/error.hpp"

namespace monohids::hids {

std::string_view name_of(EstimatorKind kind) noexcept {
  switch (kind) {
    case EstimatorKind::Exact: return "exact";
    case EstimatorKind::P2: return "p2";
    case EstimatorKind::Gk: return "gk";
  }
  return "unknown";
}

OnlineThresholdLearner::OnlineThresholdLearner(double percentile, EstimatorKind kind,
                                               double gk_epsilon)
    : percentile_(percentile), kind_(kind) {
  MONOHIDS_EXPECT(percentile > 0.0 && percentile < 1.0, "percentile must be in (0,1)");
  for (auto& s : state_) {
    switch (kind_) {
      case EstimatorKind::Exact:
        break;
      case EstimatorKind::P2:
        s.p2 = std::make_unique<stats::P2Quantile>(percentile);
        break;
      case EstimatorKind::Gk:
        s.gk = std::make_unique<stats::GkSketch>(gk_epsilon);
        break;
    }
  }
}

void OnlineThresholdLearner::observe(features::FeatureKind feature, double bin_count) {
  PerFeature& s = state_[features::index_of(feature)];
  ++s.count;
  switch (kind_) {
    case EstimatorKind::Exact:
      s.exact.push_back(bin_count);
      break;
    case EstimatorKind::P2:
      s.p2->add(bin_count);
      break;
    case EstimatorKind::Gk:
      s.gk->add(bin_count);
      break;
  }
}

void OnlineThresholdLearner::observe_series(features::FeatureKind feature,
                                            std::span<const double> bins) {
  for (double v : bins) observe(feature, v);
}

double OnlineThresholdLearner::threshold(features::FeatureKind feature) const {
  const PerFeature& s = state_[features::index_of(feature)];
  MONOHIDS_EXPECT(s.count > 0, "no observations for this feature yet");
  switch (kind_) {
    case EstimatorKind::Exact:
      return stats::quantile_nearest_rank(s.exact, percentile_);
    case EstimatorKind::P2:
      return s.p2->value();
    case EstimatorKind::Gk:
      return s.gk->quantile(percentile_);
  }
  return 0.0;
}

std::uint64_t OnlineThresholdLearner::observations(features::FeatureKind feature) const {
  return state_[features::index_of(feature)].count;
}

std::size_t OnlineThresholdLearner::memory_footprint_bytes() const {
  std::size_t total = sizeof(*this);
  for (const auto& s : state_) {
    switch (kind_) {
      case EstimatorKind::Exact:
        total += s.exact.capacity() * sizeof(double);
        break;
      case EstimatorKind::P2:
        total += sizeof(stats::P2Quantile);
        break;
      case EstimatorKind::Gk:
        // three 64-bit fields per retained tuple
        total += sizeof(stats::GkSketch) + s.gk->tuple_count() * 3 * sizeof(std::uint64_t);
        break;
    }
  }
  return total;
}

}  // namespace monohids::hids
