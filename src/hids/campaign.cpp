#include "hids/campaign.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace monohids::hids {

double Campaign::volume_at(std::uint64_t bins_since_start) const noexcept {
  return std::min(peak, initial + slope * static_cast<double>(bins_since_start));
}

DetectionOutcome time_to_detection(std::span<const double> benign, double threshold,
                                   const Campaign& campaign) {
  MONOHIDS_EXPECT(campaign.start_bin < benign.size(), "campaign starts outside the series");
  MONOHIDS_EXPECT(campaign.initial >= 0.0 && campaign.peak >= campaign.initial,
                  "campaign volumes must be non-negative with peak >= initial");

  DetectionOutcome outcome;
  for (std::uint64_t k = 0; campaign.start_bin + k < benign.size(); ++k) {
    const double volume = campaign.volume_at(k);
    if (benign[campaign.start_bin + k] + volume > threshold) {
      outcome.bins_to_detection = k;
      return outcome;
    }
    outcome.volume_before_detection += volume;
  }
  return outcome;  // ran to the end undetected
}

std::vector<DetectionOutcome> campaign_outcomes(
    std::span<const std::vector<double>> benign_users, std::span<const double> thresholds,
    const Campaign& campaign) {
  MONOHIDS_EXPECT(benign_users.size() == thresholds.size(),
                  "user/threshold count mismatch");
  std::vector<DetectionOutcome> outcomes;
  outcomes.reserve(benign_users.size());
  for (std::size_t u = 0; u < benign_users.size(); ++u) {
    outcomes.push_back(time_to_detection(benign_users[u], thresholds[u], campaign));
  }
  return outcomes;
}

}  // namespace monohids::hids
