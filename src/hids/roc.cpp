#include "hids/roc.hpp"

#include <algorithm>
#include <cmath>

#include "hids/heuristics.hpp"
#include "stats/kernels.hpp"
#include "util/error.hpp"

namespace monohids::hids {

std::vector<RocPoint> roc_curve(const stats::EmpiricalDistribution& benign,
                                const AttackModel& attack) {
  MONOHIDS_EXPECT(!benign.empty(), "ROC needs benign observations");
  MONOHIDS_EXPECT(!attack.sizes.empty(), "ROC needs an attack model");

  if (stats::kernels::batching_enabled()) {
    // Compute on the ascending candidate sweep (one exceedance merge-scan +
    // one rank_grid pass), then emit points descending as the curve expects.
    // Each point's rates are bit-identical to the per-threshold calls.
    const auto ascending = candidate_thresholds(benign);
    std::vector<double> fp(ascending.size());
    std::vector<double> fn(ascending.size());
    benign.exceedance_batch(ascending, fp);
    attack.mean_fn_batch(benign, ascending, fn);

    std::vector<RocPoint> curve;
    curve.reserve(ascending.size());
    for (std::size_t j = ascending.size(); j-- > 0;) {
      RocPoint p;
      p.threshold = ascending[j];
      p.fp_rate = fp[j];
      p.tp_rate = 1.0 - fn[j];
      curve.push_back(p);
    }
    return curve;
  }

  auto thresholds = candidate_thresholds(benign);
  std::sort(thresholds.begin(), thresholds.end(), std::greater<>());  // descending

  std::vector<RocPoint> curve;
  curve.reserve(thresholds.size());
  for (double t : thresholds) {
    RocPoint p;
    p.threshold = t;
    p.fp_rate = benign.exceedance(t);
    p.tp_rate = 1.0 - attack.mean_fn(benign, t);
    curve.push_back(p);
  }
  return curve;
}

double roc_auc(const std::vector<RocPoint>& curve) {
  MONOHIDS_EXPECT(!curve.empty(), "empty ROC curve");
  double auc = 0.0;
  double prev_fp = 0.0, prev_tp = 0.0;
  for (const RocPoint& p : curve) {
    auc += (p.fp_rate - prev_fp) * (p.tp_rate + prev_tp) / 2.0;
    prev_fp = p.fp_rate;
    prev_tp = p.tp_rate;
  }
  // extend horizontally to FP = 1 at the last TP level
  auc += (1.0 - prev_fp) * (prev_tp + curve.back().tp_rate) / 2.0;
  return auc;
}

RocPoint closest_to_perfect(const std::vector<RocPoint>& curve) {
  MONOHIDS_EXPECT(!curve.empty(), "empty ROC curve");
  const RocPoint* best = &curve.front();
  double best_d = 1e18;
  for (const RocPoint& p : curve) {
    const double d = p.fp_rate * p.fp_rate + (1.0 - p.tp_rate) * (1.0 - p.tp_rate);
    if (d < best_d) {
      best_d = d;
      best = &p;
    }
  }
  return *best;
}

}  // namespace monohids::hids
