// Time-conditioned thresholds.
//
// A single per-host threshold must sit above the host's *busiest* normal
// hours, which leaves night-time attacks the whole day-time headroom to
// hide in. Conditioning the threshold on time-of-day (work vs off hours)
// learns a separate, much lower bar for the quiet hours — same 1% FP
// budget, far less room for a nocturnal bot. This extends the paper's
// per-user diversity one axis further: per-(user, time-of-day) diversity.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "features/time_series.hpp"
#include "stats/empirical.hpp"

namespace monohids::hids {

/// Which conditioning slot a bin belongs to.
enum class DaySlot : std::uint8_t { WorkHours = 0, OffHours = 1 };

inline constexpr std::size_t kDaySlotCount = 2;

/// Work hours: Monday-Friday, 08:00-19:00 (covers the diurnal plateau and
/// its shoulders).
[[nodiscard]] DaySlot slot_of(util::Timestamp t) noexcept;

/// A detector holding one threshold per DaySlot.
class ConditionalDetector {
 public:
  ConditionalDetector() = default;
  ConditionalDetector(double work_threshold, double off_threshold);

  /// Learns per-slot thresholds at `percentile` from a training series.
  /// Slots with no samples inherit the other slot's threshold.
  static ConditionalDetector learn(const features::BinnedSeries& training,
                                   double percentile);

  [[nodiscard]] double threshold_for(util::Timestamp t) const noexcept {
    return thresholds_[static_cast<std::size_t>(slot_of(t))];
  }
  [[nodiscard]] double threshold(DaySlot slot) const noexcept {
    return thresholds_[static_cast<std::size_t>(slot)];
  }

  [[nodiscard]] bool alarms(util::Timestamp t, double value) const noexcept {
    return value > threshold_for(t);
  }

  /// Alarm rate over a series (FP rate when the series is benign).
  [[nodiscard]] double alarm_rate(const features::BinnedSeries& series,
                                  std::size_t first_bin, std::size_t last_bin) const;

  /// Detection probability of a constant additive attack confined to one
  /// slot (e.g. a night-time bot), over [first_bin, last_bin).
  [[nodiscard]] double detection_rate(const features::BinnedSeries& benign,
                                      std::size_t first_bin, std::size_t last_bin,
                                      DaySlot attacked_slot, double attack_size) const;

 private:
  std::array<double, kDaySlotCount> thresholds_{0.0, 0.0};
};

}  // namespace monohids::hids
