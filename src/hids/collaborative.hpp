// Collaborative detection (paper §7 future work, implemented as an
// extension).
//
// Figure 2 / Table 2 show that the users best placed to catch an attack
// differ per feature: low-threshold "sentinels" see stealthy anomalies that
// heavy users' detectors swallow. This module implements the scheme the
// paper sketches: sentinels that detect an event broadcast it, and the
// population counts an attack as detected when a quorum of sentinels alarm.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hids/threshold_policy.hpp"

namespace monohids::hids {

struct CollaborativeConfig {
  std::size_t sentinel_count = 10;  ///< how many lowest-threshold users serve
  std::uint32_t quorum = 2;         ///< alarms needed to call a detection
};

/// Overlap between two best-user lists (|A ∩ B|) — the paper's Table 2
/// observation that TCP- and UDP-sentinels barely overlap.
[[nodiscard]] std::size_t overlap_count(std::span<const std::uint32_t> a,
                                        std::span<const std::uint32_t> b);

/// Probability that a population-wide additive attack of per-bin size
/// `size` is collaboratively detected: at least `quorum` of the sentinels
/// raise an alarm in the attacked bin. Sentinel alarm events are treated as
/// independent across hosts (they watch disjoint traffic).
[[nodiscard]] double collaborative_detection_probability(
    std::span<const stats::EmpiricalDistribution> test_users,
    std::span<const double> thresholds, const CollaborativeConfig& config, double size);

/// Detection curve over an attack sweep, comparing solo (mean individual
/// detection) and collaborative detection.
struct CollaborativeCurve {
  std::vector<double> sizes;
  std::vector<double> solo;           ///< mean individual detection rate
  std::vector<double> collaborative;  ///< quorum-of-sentinels detection rate
};

[[nodiscard]] CollaborativeCurve collaborative_curve(
    std::span<const stats::EmpiricalDistribution> test_users,
    std::span<const double> thresholds, const CollaborativeConfig& config,
    std::span<const double> sizes);

}  // namespace monohids::hids
