#include "hids/evaluator.hpp"

#include <cmath>

#include "stats/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace monohids::hids {

namespace {

/// Publishes one finished policy evaluation: an evaluation counter, the
/// aggregate weekly false-alarm volume, and a per-policy alarm series (the
/// registry's answer to "which policy is drowning the console"). Policy
/// names are few and registration is idempotent, so the by-name lookup per
/// evaluation is cheap relative to the sweep it accounts for.
void publish_policy_outcome(const PolicyOutcome& outcome) {
  if constexpr (!obs::kEnabled) return;
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter evaluations = registry.counter("evaluator.policy_evaluations_total");
  static obs::Counter alarms = registry.counter("evaluator.false_alarms_total");
  obs::Counter per_policy =
      registry.counter("evaluator.false_alarms.policy." + outcome.policy_name);
  evaluations.inc();
  const std::uint64_t total = outcome.total_false_alarms();
  alarms.add(total);
  per_policy.add(total);
}

}  // namespace

std::vector<stats::EmpiricalDistribution> week_distributions(
    std::span<const features::FeatureMatrix> users, features::FeatureKind feature,
    std::uint32_t week, unsigned threads) {
  return util::parallel_map(
      users.size(),
      [&](std::size_t u) {
        const auto slice = users[u].of(feature).week_slice(week);
        MONOHIDS_EXPECT(!slice.empty(), "requested week is outside the trace horizon");
        return stats::EmpiricalDistribution(std::vector<double>(slice.begin(), slice.end()));
      },
      threads);
}

std::vector<double> PolicyOutcome::utilities(double w) const {
  std::vector<double> out;
  out.reserve(users.size());
  for (const auto& u : users) out.push_back(u.utility(w));
  return out;
}

double PolicyOutcome::mean_utility(double w) const {
  MONOHIDS_EXPECT(!users.empty(), "no users evaluated");
  double acc = 0.0;
  for (const auto& u : users) acc += u.utility(w);
  return acc / static_cast<double>(users.size());
}

std::uint64_t PolicyOutcome::total_false_alarms() const {
  std::uint64_t acc = 0;
  for (const auto& u : users) acc += u.weekly_false_alarms;
  return acc;
}

PolicyOutcome evaluate_policy(std::span<const stats::EmpiricalDistribution> train,
                              std::span<const stats::EmpiricalDistribution> test,
                              const Grouper& grouper, const ThresholdHeuristic& heuristic,
                              const AttackModel& attack, unsigned threads) {
  const ThresholdAssignment assignment =
      assign_thresholds(train, grouper, heuristic, &attack, threads);
  return evaluate_policy(train, test, assignment, grouper.name(), heuristic.name(), attack,
                         threads);
}

PolicyOutcome evaluate_policy(std::span<const stats::EmpiricalDistribution> train,
                              std::span<const stats::EmpiricalDistribution> test,
                              const ThresholdAssignment& assignment, std::string policy_name,
                              std::string heuristic_name, const AttackModel& attack,
                              unsigned threads) {
  MONOHIDS_EXPECT(train.size() == test.size(), "train/test population mismatch");
  MONOHIDS_EXPECT(assignment.threshold_of_user.size() == train.size(),
                  "assignment covers a different population");

  PolicyOutcome outcome;
  outcome.policy_name = std::move(policy_name);
  outcome.heuristic_name = std::move(heuristic_name);
  outcome.users.resize(train.size());
  // Per-user operating points are independent; each shard writes only its
  // own UserOutcome slot.
  util::parallel_for(
      train.size(),
      [&](std::size_t u) {
        UserOutcome& r = outcome.users[u];
        r.threshold = assignment.threshold_of_user[u];
        r.group = assignment.groups.group_of_user[u];
        r.fp_rate = test[u].exceedance(r.threshold);
        r.fn_rate = attack.mean_fn(test[u], r.threshold);
        r.weekly_false_alarms = static_cast<std::uint64_t>(
            std::llround(r.fp_rate * static_cast<double>(test[u].size())));
      },
      threads);
  publish_policy_outcome(outcome);
  return outcome;
}

PolicyOutcome evaluate_rounds(std::span<const features::FeatureMatrix> users,
                              features::FeatureKind feature,
                              std::span<const EvaluationRound> rounds, const Grouper& grouper,
                              const ThresholdHeuristic& heuristic, const AttackModel& attack,
                              unsigned threads, DistributionCache* cache) {
  MONOHIDS_EXPECT(!rounds.empty(), "need at least one evaluation round");
  PolicyOutcome merged;
  std::vector<double> fp(users.size(), 0.0), fn(users.size(), 0.0), alarms(users.size(), 0.0);

  for (const EvaluationRound& round : rounds) {
    // Shared pointers keep cache-owned distribution sets alive across the
    // round even if the cache is concurrently queried elsewhere.
    std::shared_ptr<const DistributionCache::DistributionSet> train_held, test_held;
    std::vector<stats::EmpiricalDistribution> train_built, test_built;
    std::shared_ptr<const ThresholdAssignment> assignment_held;

    std::span<const stats::EmpiricalDistribution> train, test;
    if (cache != nullptr) {
      train_held = cache->week(feature, round.train_week, threads);
      test_held = cache->week(feature, round.test_week, threads);
      MONOHIDS_EXPECT(train_held->size() == users.size(),
                      "cache covers a different population");
      train = *train_held;
      test = *test_held;
      assignment_held =
          cache->thresholds(feature, round.train_week, grouper, heuristic, &attack, threads);
    } else {
      train_built = week_distributions(users, feature, round.train_week, threads);
      test_built = week_distributions(users, feature, round.test_week, threads);
      train = train_built;
      test = test_built;
    }
    PolicyOutcome one =
        assignment_held != nullptr
            ? evaluate_policy(train, test, *assignment_held, grouper.name(),
                              heuristic.name(), attack, threads)
            : evaluate_policy(train, test, grouper, heuristic, attack, threads);
    for (std::size_t u = 0; u < users.size(); ++u) {
      fp[u] += one.users[u].fp_rate;
      fn[u] += one.users[u].fn_rate;
      alarms[u] += static_cast<double>(one.users[u].weekly_false_alarms);
    }
    merged = std::move(one);  // keep last round's thresholds/groups/names
  }

  const auto n = static_cast<double>(rounds.size());
  for (std::size_t u = 0; u < users.size(); ++u) {
    merged.users[u].fp_rate = fp[u] / n;
    merged.users[u].fn_rate = fn[u] / n;
    merged.users[u].weekly_false_alarms =
        static_cast<std::uint64_t>(std::llround(alarms[u] / n));
  }
  return merged;
}

ReplayOutcome evaluate_replay(std::span<const double> benign_test_bins,
                              std::span<const double> attack_bins, double threshold) {
  MONOHIDS_EXPECT(benign_test_bins.size() == attack_bins.size(),
                  "benign/attack bin count mismatch");
  MONOHIDS_EXPECT(!benign_test_bins.empty(), "empty test window");

  std::uint64_t benign_alarms = 0;
  std::uint64_t attacked_bins = 0;
  std::uint64_t detected = 0;
  if (stats::kernels::batching_enabled()) {
    stats::kernels::active().replay_detect(benign_test_bins, attack_bins, threshold,
                                           benign_alarms, attacked_bins, detected);
  } else {
    for (std::size_t i = 0; i < benign_test_bins.size(); ++i) {
      if (benign_test_bins[i] > threshold) ++benign_alarms;
      if (attack_bins[i] > 0.0) {
        ++attacked_bins;
        if (benign_test_bins[i] + attack_bins[i] > threshold) ++detected;
      }
    }
  }
  ReplayOutcome out;
  out.fp_rate = static_cast<double>(benign_alarms) /
                static_cast<double>(benign_test_bins.size());
  out.detection_rate = attacked_bins == 0
                           ? 0.0
                           : static_cast<double>(detected) / static_cast<double>(attacked_bins);
  return out;
}

JointAlarmOutcome joint_alarm_rate(
    const features::FeatureMatrix& matrix, std::uint32_t week,
    const std::array<double, features::kFeatureCount>& thresholds) {
  JointAlarmOutcome outcome;
  const auto reference = matrix.series.front().week_slice(week);
  MONOHIDS_EXPECT(!reference.empty(), "week outside the matrix horizon");
  const std::size_t bins = reference.size();

  std::array<std::span<const double>, features::kFeatureCount> slices;
  for (features::FeatureKind f : features::kAllFeatures) {
    slices[features::index_of(f)] = matrix.of(f).week_slice(week);
  }

  std::uint64_t joint = 0;
  std::array<std::uint64_t, features::kFeatureCount> marginal{};
  if (stats::kernels::batching_enabled()) {
    stats::kernels::active().joint_exceed(slices.data(), thresholds.data(),
                                          features::kFeatureCount, bins, marginal.data(),
                                          joint);
  } else {
    for (std::size_t b = 0; b < bins; ++b) {
      bool any = false;
      for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
        if (slices[i][b] > thresholds[i]) {
          ++marginal[i];
          any = true;
        }
      }
      if (any) ++joint;
    }
  }
  outcome.joint_fp_rate = static_cast<double>(joint) / static_cast<double>(bins);
  for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
    outcome.per_feature[i] = static_cast<double>(marginal[i]) / static_cast<double>(bins);
    outcome.sum_of_marginals += outcome.per_feature[i];
  }
  return outcome;
}

}  // namespace monohids::hids
