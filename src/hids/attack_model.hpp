// Synthetic attack-size model.
//
// The paper evaluates detectors against additive attacks swept "through a
// large range of attack sizes", bounded by the largest value any user's own
// traffic reaches (anything bigger trivially stands out on every host). An
// AttackModel is that sweep: a grid of candidate per-bin attack magnitudes
// with equal weight, consumed both by FN estimation in the evaluator and by
// the FN-aware threshold heuristics (F-measure, utility).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/empirical.hpp"

namespace monohids::hids {

struct AttackModel {
  std::vector<double> sizes;  ///< candidate per-bin attack magnitudes (> 0)

  /// Mean false-negative rate of threshold `t` against this sweep, under
  /// benign behavior `g`: mean over sizes of P(g + b <= t).
  [[nodiscard]] double mean_fn(const stats::EmpiricalDistribution& g, double t) const;
};

/// Builds a linear sweep of `steps` sizes over (0, max_size].
[[nodiscard]] AttackModel linear_attack_sweep(double max_size, std::uint32_t steps);

/// Builds a logarithmic sweep of `steps` sizes over [min_size, max_size]
/// (stealthy attacks get proportionally more grid points, mirroring the
/// paper's interest in the 1-100 connections/window range).
[[nodiscard]] AttackModel log_attack_sweep(double min_size, double max_size,
                                           std::uint32_t steps);

/// The paper's sweep bound: the maximum value of the feature over every
/// user's own (training) traffic.
[[nodiscard]] double max_observed_value(
    std::span<const stats::EmpiricalDistribution> users);

}  // namespace monohids::hids
