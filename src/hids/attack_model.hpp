// Synthetic attack-size model.
//
// The paper evaluates detectors against additive attacks swept "through a
// large range of attack sizes", bounded by the largest value any user's own
// traffic reaches (anything bigger trivially stands out on every host). An
// AttackModel is that sweep: a grid of candidate per-bin attack magnitudes
// with equal weight, consumed both by FN estimation in the evaluator and by
// the FN-aware threshold heuristics (F-measure, utility).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/empirical.hpp"

namespace monohids::hids {

struct AttackModel {
  std::vector<double> sizes;  ///< candidate per-bin attack magnitudes (> 0)

  /// Mean false-negative rate of threshold `t` against this sweep, under
  /// benign behavior `g`: mean over sizes of P(g + b <= t). Internally
  /// batches the per-size rank queries through stats::kernels (bit-identical
  /// to the per-size loop; disable via kernels::set_batching_enabled).
  [[nodiscard]] double mean_fn(const stats::EmpiricalDistribution& g, double t) const;

  /// Batched mean_fn over a whole ascending threshold sweep: out[j] =
  /// mean_fn(g, thresholds[j]), evaluated as one attack-size x threshold
  /// grid of shifted ranks in a single tiled pass over g's arena
  /// (stats::kernels rank_grid). Accumulation runs in the same size order
  /// and with the same rank/n divisions as the per-call path, so results
  /// are bit-identical on every SIMD back-end.
  void mean_fn_batch(const stats::EmpiricalDistribution& g,
                     std::span<const double> thresholds, std::span<double> out) const;
};

/// Builds a linear sweep of `steps` sizes over (0, max_size].
[[nodiscard]] AttackModel linear_attack_sweep(double max_size, std::uint32_t steps);

/// Builds a logarithmic sweep of `steps` sizes over [min_size, max_size]
/// (stealthy attacks get proportionally more grid points, mirroring the
/// paper's interest in the 1-100 connections/window range).
[[nodiscard]] AttackModel log_attack_sweep(double min_size, double max_size,
                                           std::uint32_t steps);

/// The paper's sweep bound: the maximum value of the feature over every
/// user's own (training) traffic.
[[nodiscard]] double max_observed_value(
    std::span<const stats::EmpiricalDistribution> users);

}  // namespace monohids::hids
