// Rolling (sliding-window) threshold learning.
//
// The paper re-learns thresholds from the previous whole week and notes
// they are not stable; a deployed agent can instead maintain a sliding
// window over the most recent N bins and refresh its threshold
// continuously. This learner also supports an update guard ("freeze"):
// bins that alarmed are excluded from learning, so an attacker cannot
// gradually teach the detector to accept its traffic (threshold poisoning —
// exactly what the ramped Campaign in campaign.hpp attempts).
#pragma once

#include <cstdint>
#include <deque>
#include <span>

namespace monohids::hids {

struct RollingLearnerConfig {
  std::size_t window_bins = 672;   ///< one week of 15-minute bins
  double percentile = 0.99;
  /// Exclude alarming bins from the learning window (poisoning guard).
  bool exclude_alarms = true;
  /// Minimum observations before the threshold is considered trained;
  /// until then threshold() reports +infinity (never alarm) so a fresh
  /// host doesn't page IT while it learns.
  std::size_t warmup_bins = 96;
};

class RollingThresholdLearner {
 public:
  explicit RollingThresholdLearner(RollingLearnerConfig config = {});

  /// Feeds one finished bin; returns true if that bin alarmed against the
  /// threshold in force *before* the update (detection happens with the old
  /// threshold, then learning).
  bool observe(double bin_count);

  /// Current threshold (the window's percentile); +infinity during warm-up.
  [[nodiscard]] double threshold() const;

  [[nodiscard]] std::size_t window_size() const noexcept { return window_.size(); }
  [[nodiscard]] std::uint64_t alarms() const noexcept { return alarms_; }
  [[nodiscard]] std::uint64_t observed() const noexcept { return observed_; }
  [[nodiscard]] const RollingLearnerConfig& config() const noexcept { return config_; }

 private:
  RollingLearnerConfig config_;
  std::deque<double> window_;
  std::uint64_t alarms_ = 0;
  std::uint64_t observed_ = 0;
};

}  // namespace monohids::hids
