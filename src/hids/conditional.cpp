#include "hids/conditional.hpp"

#include <vector>

#include "stats/quantile.hpp"
#include "util/error.hpp"

namespace monohids::hids {

DaySlot slot_of(util::Timestamp t) noexcept {
  if (util::is_weekend(t)) return DaySlot::OffHours;
  const double hour = util::hour_of_day(t);
  return (hour >= 8.0 && hour < 19.0) ? DaySlot::WorkHours : DaySlot::OffHours;
}

ConditionalDetector::ConditionalDetector(double work_threshold, double off_threshold)
    : thresholds_{work_threshold, off_threshold} {}

ConditionalDetector ConditionalDetector::learn(const features::BinnedSeries& training,
                                               double percentile) {
  MONOHIDS_EXPECT(percentile > 0.0 && percentile < 1.0, "percentile must be in (0,1)");
  std::array<std::vector<double>, kDaySlotCount> slot_samples;
  const auto grid = training.grid();
  for (std::size_t b = 0; b < training.bin_count(); ++b) {
    const auto slot = static_cast<std::size_t>(slot_of(grid.bin_start(b)));
    slot_samples[slot].push_back(training.at(b));
  }

  ConditionalDetector detector;
  for (std::size_t s = 0; s < kDaySlotCount; ++s) {
    if (!slot_samples[s].empty()) {
      detector.thresholds_[s] = stats::quantile_nearest_rank(slot_samples[s], percentile);
    }
  }
  // A slot with no evidence inherits the other's threshold.
  for (std::size_t s = 0; s < kDaySlotCount; ++s) {
    if (slot_samples[s].empty()) {
      detector.thresholds_[s] = detector.thresholds_[1 - s];
    }
  }
  MONOHIDS_EXPECT(!slot_samples[0].empty() || !slot_samples[1].empty(),
                  "training series is empty");
  return detector;
}

double ConditionalDetector::alarm_rate(const features::BinnedSeries& series,
                                       std::size_t first_bin, std::size_t last_bin) const {
  MONOHIDS_EXPECT(first_bin < last_bin && last_bin <= series.bin_count(),
                  "bin range out of bounds");
  std::size_t alarms = 0;
  const auto grid = series.grid();
  for (std::size_t b = first_bin; b < last_bin; ++b) {
    if (this->alarms(grid.bin_start(b), series.at(b))) ++alarms;
  }
  return static_cast<double>(alarms) / static_cast<double>(last_bin - first_bin);
}

double ConditionalDetector::detection_rate(const features::BinnedSeries& benign,
                                           std::size_t first_bin, std::size_t last_bin,
                                           DaySlot attacked_slot,
                                           double attack_size) const {
  MONOHIDS_EXPECT(first_bin < last_bin && last_bin <= benign.bin_count(),
                  "bin range out of bounds");
  std::size_t attacked = 0, detected = 0;
  const auto grid = benign.grid();
  for (std::size_t b = first_bin; b < last_bin; ++b) {
    const auto t = grid.bin_start(b);
    if (slot_of(t) != attacked_slot) continue;
    ++attacked;
    if (this->alarms(t, benign.at(b) + attack_size)) ++detected;
  }
  return attacked == 0 ? 0.0
                       : static_cast<double>(detected) / static_cast<double>(attacked);
}

}  // namespace monohids::hids
