// Compact distribution shipping for centralized policies.
//
// The homogeneous and partial-diversity policies require "each end-host
// [to] compute its traffic probability distribution and ship it off to the
// central console" (paper §4) — for a 15-minute-binned week that is 672
// doubles per feature per host. A QuantileSummary ships a fixed-size grid
// of quantile values instead; the console reconstructs a weighted
// approximation of each host's distribution and pools those. The
// ext_management_cost bench quantifies the bandwidth/threshold-accuracy
// trade-off this enables.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/empirical.hpp"

namespace monohids::hids {

class QuantileSummary {
 public:
  QuantileSummary() = default;

  /// Summarizes `samples` at `points` grid probabilities (>= 4). The grid
  /// is tail-densified: half the points cover [0, 0.9] uniformly, the other
  /// half resolve (0.9, 1] — thresholds live in the extreme tail, so that
  /// is where reconstruction accuracy matters.
  static QuantileSummary from_samples(std::span<const double> samples, std::size_t points);

  /// The probability assigned to grid slot `i` of a `points`-sized grid.
  [[nodiscard]] static double grid_probability(std::size_t i, std::size_t points);

  [[nodiscard]] std::uint64_t sample_count() const noexcept { return sample_count_; }
  [[nodiscard]] std::size_t point_count() const noexcept { return values_.size(); }
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }

  /// Wire size: the quantile grid plus the sample count.
  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    return values_.size() * sizeof(double) + sizeof(std::uint64_t);
  }

  /// Expands the summary back into `resolution` representative samples by
  /// inverse-CDF interpolation — the console-side approximation of the
  /// host's distribution.
  [[nodiscard]] std::vector<double> reconstruct(std::size_t resolution) const;

 private:
  std::vector<double> values_;  // quantile values at i/(points-1)
  std::uint64_t sample_count_ = 0;
};

/// Console-side pooling: reconstructs every host's distribution with a
/// resolution proportional to its sample count (so heavy evidence keeps its
/// weight) and merges them — the compact-summary analogue of
/// EmpiricalDistribution::merge over raw data.
[[nodiscard]] stats::EmpiricalDistribution pooled_from_summaries(
    std::span<const QuantileSummary> summaries);

}  // namespace monohids::hids
