// Live capture-to-alarm daemon: the production shape of the per-host HIDS.
//
// Everything else in the repo is batch (generate -> ingest -> evaluate);
// the Daemon is the long-running process the paper's enterprise actually
// deploys on an end host. It consumes a time-ordered packet stream
// incrementally (pcap import, live capture shim, or a replayed synthetic
// trace), drives features::IngestSession batches through the
// net::FlowTable, alarm-checks every *completed* feature bin against the
// thresholds in force, feeds the same bins into the streaming threshold
// learners (hids::OnlineThresholdLearner / hids::RollingThresholdLearner),
// re-derives thresholds at week rollover exactly the way the batch policy
// pipeline trains week k and tests week k+1, and ships alerts through an
// AlertBatcher into a CentralConsole. Process telemetry goes to the obs
// registry (daemon.* metrics); obs::write_global_prometheus is the scrape
// surface.
//
// Concurrency model: one capture side (any thread) and one worker thread.
// The capture side never blocks on ingest — offer() enqueues a batch into a
// bounded queue and *drops* it (counted) when the queue is full, so a slow
// consumer degrades coverage, never capture. on_batch()/submit() is the
// lossless blocking form for file replay, where the producer may wait.
// `deliver_inline` runs ingest on the calling thread for deterministic
// single-threaded tests; the processed output is identical either way
// (one consumer, FIFO order).
//
// Determinism contract (pinned by tests/hids/test_daemon_replay.cpp): for
// the same packet stream, any batch partition, queue depth, and inline-vs-
// worker choice yield bit-identical feature matrices, thresholds, alarm
// sets, and flow stats — and all of them bit-identical to the batch
// pipeline (extract_features + PercentileHeuristic on week slices +
// HostHids::scan_range).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "features/pipeline.hpp"
#include "hids/alerts.hpp"
#include "hids/console.hpp"
#include "hids/online_learner.hpp"
#include "hids/rolling_learner.hpp"
#include "obs/metrics.hpp"
#include "trace/pcap.hpp"

namespace monohids::hids {

/// How the daemon maintains its detection thresholds.
enum class ThresholdMode : std::uint8_t {
  /// Train on each completed week, swap thresholds at the rollover (the
  /// paper's week-k -> week-k+1 methodology, run incrementally). Week 0 is
  /// warm-up: thresholds are +infinity, nothing alarms.
  WeeklyRollover,
  /// Sliding-window RollingThresholdLearner per feature: the threshold
  /// refreshes continuously and alarming bins can be excluded from
  /// learning (poisoning guard).
  Rolling,
};

struct DaemonConfig {
  net::Ipv4Address monitored;
  /// Host identity in emitted alerts and the console accounting.
  std::uint32_t user_id = 0;
  features::PipelineConfig pipeline;

  ThresholdMode mode = ThresholdMode::WeeklyRollover;
  /// Training percentile for WeeklyRollover (the IT-survey 99th).
  double percentile = 0.99;
  /// Estimator backing the weekly learner. Exact reproduces the batch
  /// thresholds bit for bit; Gk/P2 bound memory on huge weeks.
  EstimatorKind estimator = EstimatorKind::Exact;
  double gk_epsilon = 0.005;
  /// Rolling-mode learner parameters (window, percentile, alarm guard).
  RollingLearnerConfig rolling;

  /// Bounded ingest queue depth, in batches. offer() drops (and counts)
  /// when full; submit()/on_batch() blocks until space frees up.
  std::size_t queue_capacity = 64;
  /// How often queued alerts flush to the console (simulated time).
  util::Duration alert_batch_interval = util::kMicrosPerHour;
  /// Run ingest on the calling thread instead of a worker (deterministic
  /// tests, benchmarking the pure processing path). offer() never drops.
  bool deliver_inline = false;
  /// Start with the worker parked; no batch is consumed until resume().
  /// Lets tests fill the queue deterministically to exercise backpressure.
  bool start_paused = false;
};

/// One threshold re-derivation, recorded at each week rollover (and, in
/// Rolling mode, at each week boundary for observability).
struct ThresholdUpdate {
  std::uint32_t week = 0;  ///< week the thresholds take effect
  std::array<double, features::kFeatureCount> thresholds{};
};

/// Live operational counters. Monotone; a snapshot is internally consistent
/// (taken under the daemon's state lock).
struct DaemonStats {
  std::uint64_t batches_enqueued = 0;   ///< accepted into the queue (or inline)
  std::uint64_t batches_dropped = 0;    ///< offer() rejections: queue full
  std::uint64_t packets_dropped = 0;    ///< packets inside dropped batches
  std::uint64_t packets_ingested = 0;   ///< reached the flow table
  std::uint64_t packets_out_of_order = 0;  ///< skipped: timestamp regressed
  std::uint64_t bins_completed = 0;     ///< feature bins sealed and scanned
  std::uint64_t alerts_emitted = 0;
  std::uint64_t rollovers = 0;          ///< threshold re-derivations applied
  std::uint64_t input_errors = 0;       ///< recovered capture-stream faults
  std::size_t queue_peak = 0;           ///< high-water queue depth (batches)
  std::string last_input_error;         ///< diagnostic of the latest fault
};

/// Everything the daemon knows at shutdown.
struct DaemonResult {
  features::PipelineResult pipeline;      ///< final matrix + flow stats
  std::vector<Alert> alerts;              ///< every alert, in emission order
  std::vector<ThresholdUpdate> rollovers; ///< threshold history
  CentralConsole console;                 ///< alert accounting after batching
  DaemonStats stats;

  DaemonResult(std::uint32_t users, std::uint32_t weeks) : console(users, weeks) {}
};

class Daemon final : public features::PacketSink {
 public:
  explicit Daemon(DaemonConfig config);
  /// Joining destructor: stops the worker and discards unprocessed input if
  /// finish() was never called.
  ~Daemon() override;

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Lossless feed (blocks when the queue is full): the PacketSink face, so
  /// stream_pcap / generate_packets_streamed / BatchingAdapter plug in
  /// directly. Batches must be time-ordered within and across calls;
  /// regressions are skipped and counted, never fatal.
  void on_batch(std::span<const net::PacketRecord> batch) override;

  /// Lossy capture-side feed: never blocks. Returns false (and counts the
  /// drop) when the queue is full.
  bool offer(std::span<const net::PacketRecord> batch);

  /// Pumps an entire pcap capture through the daemon (blocking, lossless).
  /// Mid-stream faults are recovered: every packet parsed before the fault
  /// is ingested, the diagnostic lands in stats().last_input_error and the
  /// returned result's stream_error. Malformed global headers still throw.
  trace::PcapReadResult consume_pcap(std::istream& in,
                                     std::size_t max_batch = features::kDefaultIngestBatch);

  /// Releases a start_paused worker. Idempotent; no-op when inline.
  void resume();

  /// Graceful shutdown: drains the queue, flushes the flow table at
  /// max(horizon, last packet) exactly like the batch pipeline, scans the
  /// remaining bins (rollover accounting included), flushes the alert
  /// batcher, and returns the full run record. Call exactly once.
  [[nodiscard]] DaemonResult finish();

  /// Thread-safe live counters snapshot.
  [[nodiscard]] DaemonStats stats() const;

  /// Threshold currently in force for `feature` (+infinity during warm-up).
  /// Thread-safe (scrape surface).
  [[nodiscard]] double threshold(features::FeatureKind feature) const;

  /// Week of the last completed bin. Thread-safe.
  [[nodiscard]] std::uint32_t current_week() const;

  [[nodiscard]] const DaemonConfig& config() const noexcept { return config_; }
  /// Bins per week on this grid (week_slice partition arithmetic).
  [[nodiscard]] std::uint64_t bins_per_week() const noexcept { return bins_per_week_; }

 private:
  void worker_loop();
  /// Ingests one batch on the consumer side: order-filter, flow table,
  /// extractor, then scans newly completed bins.
  void ingest(std::span<const net::PacketRecord> batch);
  /// Alarm-checks and learns bins [scanned_bins_, limit) of `matrix`.
  void scan_bins(const features::FeatureMatrix& matrix, std::uint64_t limit);
  /// WeeklyRollover: derive next week's thresholds from the finished week.
  void roll_week(std::uint32_t completed_week);
  void emit_alert(features::FeatureKind feature, std::uint64_t bin, double observed,
                  double threshold_in_force);

  DaemonConfig config_;
  std::uint64_t bins_per_week_ = 0;
  std::uint64_t horizon_bins_ = 0;

  // ---- consumer-side state (worker thread, or caller when inline) ----
  features::IngestSession session_;
  std::unique_ptr<OnlineThresholdLearner> week_learner_;  // WeeklyRollover
  std::vector<RollingThresholdLearner> rolling_;          // Rolling (one per feature)
  AlertBatcher batcher_;
  util::Timestamp last_ts_ = 0;   ///< order filter watermark
  bool saw_packet_ = false;
  std::vector<net::PacketRecord> filtered_;  ///< reused order-filter scratch
  std::uint64_t scanned_bins_ = 0;
  std::uint32_t learner_week_ = 0;  ///< week the weekly learner is observing

  // ---- shared state (guarded by state_mu_) ----
  mutable std::mutex state_mu_;
  DaemonStats stats_;
  std::vector<Alert> alerts_;
  std::vector<ThresholdUpdate> updates_;
  CentralConsole console_;
  std::array<double, features::kFeatureCount> active_thresholds_{};
  std::uint32_t current_week_ = 0;

  // ---- queue ----
  mutable std::mutex queue_mu_;
  std::condition_variable queue_space_;  ///< submitters waiting for room
  std::condition_variable queue_ready_;  ///< worker waiting for input
  std::deque<std::vector<net::PacketRecord>> queue_;
  bool stopping_ = false;
  bool paused_ = false;
  std::thread worker_;
  bool finished_ = false;

  // ---- obs handles ----
  obs::Counter m_packets_;
  obs::Counter m_batches_;
  obs::Counter m_dropped_batches_;
  obs::Counter m_out_of_order_;
  obs::Counter m_bins_;
  obs::Counter m_alerts_;
  obs::Counter m_rollovers_;
  obs::Counter m_input_errors_;
  obs::Gauge m_queue_depth_;
  obs::Histogram m_batch_ms_;
};

}  // namespace monohids::hids
