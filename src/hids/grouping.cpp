#include "hids/grouping.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "stats/kmeans.hpp"
#include "util/error.hpp"

namespace monohids::hids {

std::vector<std::vector<std::uint32_t>> GroupAssignment::members() const {
  std::vector<std::vector<std::uint32_t>> out(group_count);
  for (std::uint32_t u = 0; u < group_of_user.size(); ++u) {
    MONOHIDS_EXPECT(group_of_user[u] < group_count, "group id out of range");
    out[group_of_user[u]].push_back(u);
  }
  return out;
}

GroupAssignment HomogeneousGrouper::assign(
    std::span<const stats::EmpiricalDistribution> users) const {
  MONOHIDS_EXPECT(!users.empty(), "empty population");
  GroupAssignment a;
  a.group_of_user.assign(users.size(), 0);
  a.group_count = 1;
  return a;
}

GroupAssignment FullDiversityGrouper::assign(
    std::span<const stats::EmpiricalDistribution> users) const {
  MONOHIDS_EXPECT(!users.empty(), "empty population");
  GroupAssignment a;
  a.group_of_user.resize(users.size());
  std::iota(a.group_of_user.begin(), a.group_of_user.end(), 0);
  a.group_count = static_cast<std::uint32_t>(users.size());
  return a;
}

namespace {

/// Users ordered ascending by the pivot quantile of their training data.
std::vector<std::uint32_t> order_by_quantile(
    std::span<const stats::EmpiricalDistribution> users, double pivot_quantile) {
  std::vector<std::uint32_t> order(users.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> pivot(users.size());
  for (std::size_t i = 0; i < users.size(); ++i) {
    pivot[i] = users[i].empty() ? 0.0 : users[i].quantile(pivot_quantile);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) { return pivot[a] < pivot[b]; });
  return order;
}

/// Splits `count` ordered slots into `groups` nearly equal chunks; returns
/// the group id of each slot position.
void chunk_assign(std::span<const std::uint32_t> ordered_users, std::uint32_t groups,
                  std::uint32_t first_group_id, std::vector<std::uint32_t>& group_of_user) {
  const std::size_t n = ordered_users.size();
  if (n == 0) return;
  const std::uint32_t effective = std::min<std::uint32_t>(groups, static_cast<std::uint32_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const auto g = static_cast<std::uint32_t>(i * effective / n);
    group_of_user[ordered_users[i]] = first_group_id + g;
  }
}

}  // namespace

KneePartialGrouper::KneePartialGrouper(double top_fraction, std::uint32_t top_groups,
                                       std::uint32_t bottom_groups, double pivot_quantile)
    : top_fraction_(top_fraction),
      top_groups_(top_groups),
      bottom_groups_(bottom_groups),
      pivot_quantile_(pivot_quantile) {
  MONOHIDS_EXPECT(top_fraction > 0.0 && top_fraction < 1.0, "top fraction must be in (0,1)");
  MONOHIDS_EXPECT(top_groups > 0 && bottom_groups > 0, "group counts must be positive");
  MONOHIDS_EXPECT(pivot_quantile > 0.0 && pivot_quantile < 1.0,
                  "pivot quantile must be in (0,1)");
}

GroupAssignment KneePartialGrouper::assign(
    std::span<const stats::EmpiricalDistribution> users) const {
  MONOHIDS_EXPECT(!users.empty(), "empty population");
  const auto order = order_by_quantile(users, pivot_quantile_);

  const auto n = users.size();
  const auto top_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(top_fraction_ * static_cast<double>(n))));
  const std::size_t bottom_count = n - top_count;

  GroupAssignment a;
  a.group_of_user.assign(n, 0);
  const std::span<const std::uint32_t> ordered(order);
  // bottom 85% first (group ids 0..bottom_groups-1), then top 15%
  chunk_assign(ordered.first(bottom_count), bottom_groups_, 0, a.group_of_user);
  chunk_assign(ordered.subspan(bottom_count), top_groups_,
               std::min<std::uint32_t>(bottom_groups_,
                                       static_cast<std::uint32_t>(bottom_count)),
               a.group_of_user);
  a.group_count = *std::max_element(a.group_of_user.begin(), a.group_of_user.end()) + 1;
  return a;
}

std::string KneePartialGrouper::name() const {
  std::ostringstream os;
  os << (top_groups_ + bottom_groups_) << "-partial";
  return os.str();
}

std::string KneePartialGrouper::cache_key() const {
  std::ostringstream os;
  os << name() << "(top=" << top_fraction_ << ",tg=" << top_groups_
     << ",bg=" << bottom_groups_ << ",q=" << pivot_quantile_ << ')';
  return os.str();
}

KMeansGrouper::KMeansGrouper(std::uint32_t k, double pivot_quantile, std::uint64_t seed)
    : k_(k), pivot_quantile_(pivot_quantile), seed_(seed) {
  MONOHIDS_EXPECT(k > 0, "k must be positive");
}

GroupAssignment KMeansGrouper::assign(
    std::span<const stats::EmpiricalDistribution> users) const {
  MONOHIDS_EXPECT(users.size() >= k_, "fewer users than clusters");
  std::vector<std::vector<double>> points;
  points.reserve(users.size());
  for (const auto& u : users) {
    const double q = u.empty() ? 0.0 : u.quantile(pivot_quantile_);
    points.push_back({std::log10(std::max(1.0, q))});  // cluster in log space
  }
  util::Xoshiro256 rng(seed_);
  const auto result = stats::kmeans(points, k_, rng);

  GroupAssignment a;
  a.group_of_user = result.assignment;
  a.group_count = k_;
  return a;
}

std::string KMeansGrouper::name() const {
  std::ostringstream os;
  os << "kmeans-" << k_;
  return os.str();
}

std::string KMeansGrouper::cache_key() const {
  std::ostringstream os;
  os << name() << "(q=" << pivot_quantile_ << ",seed=" << seed_ << ')';
  return os.str();
}

EqualFrequencyGrouper::EqualFrequencyGrouper(std::uint32_t k, double pivot_quantile)
    : k_(k), pivot_quantile_(pivot_quantile) {
  MONOHIDS_EXPECT(k > 0, "k must be positive");
}

GroupAssignment EqualFrequencyGrouper::assign(
    std::span<const stats::EmpiricalDistribution> users) const {
  MONOHIDS_EXPECT(!users.empty(), "empty population");
  const auto order = order_by_quantile(users, pivot_quantile_);
  GroupAssignment a;
  a.group_of_user.assign(users.size(), 0);
  chunk_assign(order, k_, 0, a.group_of_user);
  a.group_count = *std::max_element(a.group_of_user.begin(), a.group_of_user.end()) + 1;
  return a;
}

std::string EqualFrequencyGrouper::name() const {
  std::ostringstream os;
  os << "equal-freq-" << k_;
  return os.str();
}

std::string EqualFrequencyGrouper::cache_key() const {
  std::ostringstream os;
  os << name() << "(q=" << pivot_quantile_ << ')';
  return os.str();
}

}  // namespace monohids::hids
