#include "hids/console.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace monohids::hids {

namespace {

/// Console metrics: alarm volume is the paper's Table-3 operational cost,
/// so the registry keeps a process-wide total plus a per-feature breakdown.
/// Published per ingested batch (one add per touched series), not per alert.
struct ConsoleMetrics {
  obs::Counter alerts;
  obs::Counter batches;
  obs::Counter per_feature[features::kFeatureCount];
};

ConsoleMetrics& console_metrics() {
  auto& registry = obs::MetricsRegistry::global();
  static ConsoleMetrics m = [&registry] {
    ConsoleMetrics built{
        registry.counter("console.alerts_total"),
        registry.counter("console.batches_total"),
        {},
    };
    for (features::FeatureKind f : features::kAllFeatures) {
      built.per_feature[features::index_of(f)] = registry.counter(
          "console.alerts." + std::string(features::name_of(f)));
    }
    return built;
  }();
  return m;
}

}  // namespace

CentralConsole::CentralConsole(std::uint32_t user_count, std::uint32_t weeks)
    : weeks_(weeks), per_user_(user_count, 0), per_week_(weeks, 0) {
  MONOHIDS_EXPECT(user_count > 0 && weeks > 0, "console needs users and weeks");
}

void CentralConsole::ingest(const AlertBatch& batch) {
  MONOHIDS_EXPECT(batch.user_id < per_user_.size(), "alert from unknown user");
  ++batches_;
  std::array<std::uint64_t, features::kFeatureCount> feature_delta{};
  for (const Alert& alert : batch.alerts) {
    MONOHIDS_EXPECT(alert.user_id == batch.user_id, "mixed-user batch");
    ++total_;
    ++per_user_[alert.user_id];
    const std::uint32_t week = util::week_of(alert.bin_start);
    if (week < weeks_) ++per_week_[week];
    ++per_feature_[features::index_of(alert.feature)];
    if constexpr (obs::kEnabled) ++feature_delta[features::index_of(alert.feature)];
  }
  if constexpr (obs::kEnabled) {
    ConsoleMetrics& m = console_metrics();
    m.batches.inc();
    m.alerts.add(batch.alerts.size());
    for (std::size_t f = 0; f < feature_delta.size(); ++f) {
      if (feature_delta[f] != 0) m.per_feature[f].add(feature_delta[f]);
    }
  }
}

std::uint64_t CentralConsole::alerts_of_user(std::uint32_t user) const {
  MONOHIDS_EXPECT(user < per_user_.size(), "unknown user");
  return per_user_[user];
}

std::uint64_t CentralConsole::alerts_in_week(std::uint32_t week) const {
  MONOHIDS_EXPECT(week < weeks_, "week out of range");
  return per_week_[week];
}

std::uint64_t CentralConsole::alerts_of_feature(features::FeatureKind f) const {
  return per_feature_[features::index_of(f)];
}

double CentralConsole::mean_alerts_per_week() const {
  return static_cast<double>(total_) / static_cast<double>(weeks_);
}

std::vector<std::pair<std::uint32_t, std::uint64_t>> CentralConsole::noisiest_users(
    std::size_t count) const {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
  out.reserve(per_user_.size());
  for (std::uint32_t u = 0; u < per_user_.size(); ++u) out.emplace_back(u, per_user_[u]);
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  out.resize(std::min(count, out.size()));
  return out;
}

}  // namespace monohids::hids
