#include "hids/attack_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/kernels.hpp"
#include "util/error.hpp"

namespace monohids::hids {

double AttackModel::mean_fn(const stats::EmpiricalDistribution& g, double t) const {
  MONOHIDS_EXPECT(!sizes.empty(), "attack model has no sizes");
  if (stats::kernels::batching_enabled() && !g.empty() && sizes.size() >= 8) {
    // One batched rank call for the whole sweep instead of one binary
    // search per size. The shifted queries t - b are the exact subtractions
    // the per-call path feeds to cdf, and ranks are exact integers, so the
    // size-ordered accumulation below reproduces the seed sum bit-for-bit.
    thread_local std::vector<double> queries;
    thread_local std::vector<std::uint32_t> ranks;
    queries.resize(sizes.size());
    ranks.resize(sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) queries[i] = t - sizes[i];
    if (const auto table = g.rank_table(); !table.empty()) {
      const auto n32 = static_cast<std::uint32_t>(g.size());
      for (std::size_t i = 0; i < queries.size(); ++i) {
        ranks[i] = stats::kernels::rank_from_table(table, n32, queries[i]);
      }
    } else {
      stats::kernels::active().rank_unsorted(g.samples(), queries, 0.0, ranks.data());
    }
    const auto n = static_cast<double>(g.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      acc += static_cast<double>(ranks[i]) / n;
    }
    return acc / static_cast<double>(sizes.size());
  }
  double acc = 0.0;
  for (double b : sizes) acc += g.shifted_cdf(b, t);
  return acc / static_cast<double>(sizes.size());
}

void AttackModel::mean_fn_batch(const stats::EmpiricalDistribution& g,
                                std::span<const double> thresholds,
                                std::span<double> out) const {
  MONOHIDS_EXPECT(!sizes.empty(), "attack model has no sizes");
  MONOHIDS_EXPECT(!g.empty(), "cdf of empty distribution");
  MONOHIDS_EXPECT(thresholds.size() == out.size(), "mean_fn_batch output size mismatch");
  assert(std::is_sorted(thresholds.begin(), thresholds.end()));
  if (thresholds.empty()) return;
  const std::size_t T = thresholds.size();
  const std::size_t S = sizes.size();
  thread_local std::vector<std::uint32_t> ranks;
  ranks.resize(T * S);
  if (const auto table = g.rank_table(); !table.empty()) {
    // Integer-count samples: the whole size x threshold grid is T*S O(1)
    // table loads — no arena pass at all. Same exact ranks as rank_grid.
    const auto n32 = static_cast<std::uint32_t>(g.size());
    for (std::size_t s = 0; s < S; ++s) {
      const double shift = sizes[s];
      std::uint32_t* row = ranks.data() + s * T;
      for (std::size_t j = 0; j < T; ++j) {
        row[j] = stats::kernels::rank_from_table(table, n32, thresholds[j] - shift);
      }
    }
  } else {
    stats::kernels::active().rank_grid(g.samples(), thresholds, sizes, ranks.data());
  }
  const auto n = static_cast<double>(g.size());
  std::fill(out.begin(), out.end(), 0.0);
  // Per-threshold accumulation in size order — the same floating-point
  // operation sequence as the per-call loop, so sums match bit-for-bit.
  for (std::size_t s = 0; s < S; ++s) {
    const std::uint32_t* row = ranks.data() + s * T;
    for (std::size_t j = 0; j < T; ++j) {
      out[j] += static_cast<double>(row[j]) / n;
    }
  }
  const auto count = static_cast<double>(S);
  for (std::size_t j = 0; j < T; ++j) out[j] /= count;
}

AttackModel linear_attack_sweep(double max_size, std::uint32_t steps) {
  MONOHIDS_EXPECT(max_size > 0.0, "sweep needs a positive maximum");
  MONOHIDS_EXPECT(steps >= 2, "sweep needs at least two steps");
  AttackModel model;
  model.sizes.reserve(steps);
  for (std::uint32_t i = 1; i <= steps; ++i) {
    model.sizes.push_back(max_size * static_cast<double>(i) / static_cast<double>(steps));
  }
  return model;
}

AttackModel log_attack_sweep(double min_size, double max_size, std::uint32_t steps) {
  MONOHIDS_EXPECT(min_size > 0.0 && max_size > min_size, "need 0 < min < max");
  MONOHIDS_EXPECT(steps >= 2, "sweep needs at least two steps");
  AttackModel model;
  model.sizes.reserve(steps);
  const double ratio = std::log(max_size / min_size);
  for (std::uint32_t i = 0; i < steps; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(steps - 1);
    model.sizes.push_back(min_size * std::exp(ratio * f));
  }
  return model;
}

double max_observed_value(std::span<const stats::EmpiricalDistribution> users) {
  double best = 0.0;
  for (const auto& u : users) {
    if (!u.empty()) best = std::max(best, u.max());
  }
  MONOHIDS_EXPECT(best > 0.0, "no user has positive traffic for this feature");
  return best;
}

}  // namespace monohids::hids
