#include "hids/attack_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace monohids::hids {

double AttackModel::mean_fn(const stats::EmpiricalDistribution& g, double t) const {
  MONOHIDS_EXPECT(!sizes.empty(), "attack model has no sizes");
  double acc = 0.0;
  for (double b : sizes) acc += g.shifted_cdf(b, t);
  return acc / static_cast<double>(sizes.size());
}

AttackModel linear_attack_sweep(double max_size, std::uint32_t steps) {
  MONOHIDS_EXPECT(max_size > 0.0, "sweep needs a positive maximum");
  MONOHIDS_EXPECT(steps >= 2, "sweep needs at least two steps");
  AttackModel model;
  model.sizes.reserve(steps);
  for (std::uint32_t i = 1; i <= steps; ++i) {
    model.sizes.push_back(max_size * static_cast<double>(i) / static_cast<double>(steps));
  }
  return model;
}

AttackModel log_attack_sweep(double min_size, double max_size, std::uint32_t steps) {
  MONOHIDS_EXPECT(min_size > 0.0 && max_size > min_size, "need 0 < min < max");
  MONOHIDS_EXPECT(steps >= 2, "sweep needs at least two steps");
  AttackModel model;
  model.sizes.reserve(steps);
  const double ratio = std::log(max_size / min_size);
  for (std::uint32_t i = 0; i < steps; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(steps - 1);
    model.sizes.push_back(min_size * std::exp(ratio * f));
  }
  return model;
}

double max_observed_value(std::span<const stats::EmpiricalDistribution> users) {
  double best = 0.0;
  for (const auto& u : users) {
    if (!u.empty()) best = std::max(best, u.max());
  }
  MONOHIDS_EXPECT(best > 0.0, "no user has positive traffic for this feature");
  return best;
}

}  // namespace monohids::hids
