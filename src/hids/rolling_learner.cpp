#include "hids/rolling_learner.hpp"

#include <limits>
#include <vector>

#include "stats/quantile.hpp"
#include "util/error.hpp"

namespace monohids::hids {

RollingThresholdLearner::RollingThresholdLearner(RollingLearnerConfig config)
    : config_(config) {
  MONOHIDS_EXPECT(config_.window_bins > 0, "window must be non-empty");
  MONOHIDS_EXPECT(config_.percentile > 0.0 && config_.percentile < 1.0,
                  "percentile must be in (0,1)");
  MONOHIDS_EXPECT(config_.warmup_bins > 0, "warmup must be positive");
}

bool RollingThresholdLearner::observe(double bin_count) {
  const double t = threshold();
  const bool alarmed = bin_count > t;
  if (alarmed) ++alarms_;
  ++observed_;

  if (!(alarmed && config_.exclude_alarms)) {
    window_.push_back(bin_count);
    if (window_.size() > config_.window_bins) window_.pop_front();
  }
  return alarmed;
}

double RollingThresholdLearner::threshold() const {
  if (window_.size() < config_.warmup_bins) {
    return std::numeric_limits<double>::infinity();
  }
  const std::vector<double> samples(window_.begin(), window_.end());
  return stats::quantile_nearest_rank(samples, config_.percentile);
}

}  // namespace monohids::hids
