#include "hids/daemon.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "util/error.hpp"

namespace monohids::hids {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Console week capacity: every whole-or-partial week of the horizon, plus
/// one so a flush landing exactly at the horizon boundary still bins.
std::uint32_t console_weeks(util::Duration horizon) {
  return static_cast<std::uint32_t>((horizon + util::kMicrosPerWeek - 1) /
                                    util::kMicrosPerWeek) +
         1;
}

}  // namespace

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      session_(config_.monitored, config_.pipeline),
      batcher_(config_.user_id, config_.alert_batch_interval,
               [this](const AlertBatch& batch) { console_.ingest(batch); }),
      console_(config_.user_id + 1, console_weeks(config_.pipeline.horizon)) {
  const util::BinGrid grid = config_.pipeline.grid;
  MONOHIDS_EXPECT(grid.width() > 0 && grid.width() <= util::kMicrosPerWeek,
                  "daemon bin width must be positive and at most one week");
  bins_per_week_ = util::kMicrosPerWeek / grid.width();
  MONOHIDS_EXPECT(bins_per_week_ > 0, "daemon bin grid has no bins per week");
  horizon_bins_ = grid.bin_count(config_.pipeline.horizon);
  MONOHIDS_EXPECT(config_.queue_capacity > 0, "daemon queue capacity must be positive");
  MONOHIDS_EXPECT(config_.percentile > 0.0 && config_.percentile < 1.0,
                  "daemon percentile must lie in (0, 1)");

  active_thresholds_.fill(kInf);  // week 0 / warm-up: never alarm
  if (config_.mode == ThresholdMode::WeeklyRollover) {
    week_learner_ = std::make_unique<OnlineThresholdLearner>(
        config_.percentile, config_.estimator, config_.gk_epsilon);
  } else {
    rolling_.reserve(features::kFeatureCount);
    for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
      rolling_.emplace_back(config_.rolling);
    }
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  m_packets_ = reg.counter("daemon.packets_ingested");
  m_batches_ = reg.counter("daemon.batches");
  m_dropped_batches_ = reg.counter("daemon.batches_dropped");
  m_out_of_order_ = reg.counter("daemon.packets_out_of_order");
  m_bins_ = reg.counter("daemon.bins_completed");
  m_alerts_ = reg.counter("daemon.alerts");
  m_rollovers_ = reg.counter("daemon.rollovers");
  m_input_errors_ = reg.counter("daemon.input_errors");
  m_queue_depth_ = reg.gauge("daemon.queue_depth");
  m_batch_ms_ = reg.histogram("daemon.batch_ms", obs::latency_buckets_ms());

  if (!config_.deliver_inline) {
    paused_ = config_.start_paused;
    worker_ = std::thread([this] { worker_loop(); });
  }
}

Daemon::~Daemon() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      stopping_ = true;
      paused_ = false;
    }
    queue_ready_.notify_all();
    queue_space_.notify_all();
    worker_.join();
  }
}

void Daemon::on_batch(std::span<const net::PacketRecord> batch) {
  MONOHIDS_EXPECT(!finished_, "daemon already finished");
  if (batch.empty()) return;

  if (config_.deliver_inline) {
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      ++stats_.batches_enqueued;
    }
    m_batches_.inc();
    ingest(batch);
    return;
  }

  std::vector<net::PacketRecord> copy(batch.begin(), batch.end());
  std::size_t depth = 0;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    queue_space_.wait(lock,
                      [this] { return queue_.size() < config_.queue_capacity || stopping_; });
    if (stopping_) return;  // shutting down: late batch is dropped silently
    queue_.push_back(std::move(copy));
    depth = queue_.size();
  }
  queue_ready_.notify_one();
  m_batches_.inc();
  m_queue_depth_.set(static_cast<std::int64_t>(depth));
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.batches_enqueued;
    if (depth > stats_.queue_peak) stats_.queue_peak = depth;
  }
}

bool Daemon::offer(std::span<const net::PacketRecord> batch) {
  MONOHIDS_EXPECT(!finished_, "daemon already finished");
  if (batch.empty()) return true;
  if (config_.deliver_inline) {
    on_batch(batch);
    return true;
  }

  std::size_t depth = 0;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (queue_.size() >= config_.queue_capacity) {
      lock.unlock();
      m_dropped_batches_.inc();
      std::lock_guard<std::mutex> state(state_mu_);
      ++stats_.batches_dropped;
      stats_.packets_dropped += batch.size();
      return false;
    }
    queue_.emplace_back(batch.begin(), batch.end());
    depth = queue_.size();
  }
  queue_ready_.notify_one();
  m_batches_.inc();
  m_queue_depth_.set(static_cast<std::int64_t>(depth));
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.batches_enqueued;
    if (depth > stats_.queue_peak) stats_.queue_peak = depth;
  }
  return true;
}

trace::PcapReadResult Daemon::consume_pcap(std::istream& in, std::size_t max_batch) {
  trace::PcapReadResult result = trace::stream_pcap_recovering(in, *this, max_batch);
  if (!result.stream_error.empty()) {
    m_input_errors_.inc();
    std::lock_guard<std::mutex> lock(state_mu_);
    ++stats_.input_errors;
    stats_.last_input_error = result.stream_error;
  }
  return result;
}

void Daemon::resume() {
  if (config_.deliver_inline) return;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    paused_ = false;
  }
  queue_ready_.notify_all();
}

void Daemon::worker_loop() {
  for (;;) {
    std::vector<net::PacketRecord> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_ready_.wait(lock, [this] { return stopping_ || (!paused_ && !queue_.empty()); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      batch = std::move(queue_.front());
      queue_.pop_front();
      m_queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
    }
    queue_space_.notify_one();
    ingest(batch);
  }
}

void Daemon::ingest(std::span<const net::PacketRecord> batch) {
  const auto started = std::chrono::steady_clock::now();

  // Order filter: the feature pipeline requires time-ordered input; a live
  // capture can deliver the odd regressed timestamp (e.g. after a clock
  // step). Those packets are skipped and counted, never fatal.
  std::uint64_t out_of_order = 0;
  filtered_.clear();
  for (const net::PacketRecord& packet : batch) {
    if (saw_packet_ && packet.timestamp < last_ts_) {
      ++out_of_order;
      continue;
    }
    last_ts_ = packet.timestamp;
    saw_packet_ = true;
    filtered_.push_back(packet);
  }
  if (!filtered_.empty()) {
    if (out_of_order == 0) {
      session_.on_batch(batch);
    } else {
      session_.on_batch(filtered_);
    }
  }
  const std::uint64_t ingested = batch.size() - out_of_order;
  m_packets_.add(ingested);
  if (out_of_order != 0) m_out_of_order_.add(out_of_order);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    stats_.packets_ingested += ingested;
    stats_.packets_out_of_order += out_of_order;
  }

  const std::uint64_t completed = session_.seal_completed();
  scan_bins(session_.live_matrix(), completed);

  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - started)
          .count();
  m_batch_ms_.observe(elapsed_ms);
}

void Daemon::scan_bins(const features::FeatureMatrix& matrix, std::uint64_t limit) {
  if (limit <= scanned_bins_) return;

  std::array<std::span<const double>, features::kFeatureCount> series;
  for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
    series[i] = matrix.of(features::kAllFeatures[i]).values();
  }
  if (limit > series[0].size()) limit = series[0].size();

  for (std::uint64_t bin = scanned_bins_; bin < limit; ++bin) {
    const std::uint32_t week = static_cast<std::uint32_t>(bin / bins_per_week_);
    if (week > learner_week_) {
      // First bin of a new week: thresholds for `week` derive from the week
      // just finished, before this bin is alarm-checked — the incremental
      // form of the batch train-on-week-k / test-on-week-k+1 split.
      roll_week(learner_week_);
      learner_week_ = week;
    }

    for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
      const double value = series[i][bin];
      double threshold_in_force;
      if (config_.mode == ThresholdMode::WeeklyRollover) {
        threshold_in_force = active_thresholds_[i];
        if (value > threshold_in_force) {
          emit_alert(features::kAllFeatures[i], bin, value, threshold_in_force);
        }
        week_learner_->observe(features::kAllFeatures[i], value);
      } else {
        threshold_in_force = rolling_[i].threshold();
        if (value > threshold_in_force) {
          emit_alert(features::kAllFeatures[i], bin, value, threshold_in_force);
        }
        rolling_[i].observe(value);
      }
    }
    if (config_.mode == ThresholdMode::Rolling) {
      std::lock_guard<std::mutex> lock(state_mu_);
      for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
        active_thresholds_[i] = rolling_[i].threshold();
      }
    }
  }

  const std::uint64_t newly = limit - scanned_bins_;
  scanned_bins_ = limit;
  m_bins_.add(newly);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    stats_.bins_completed = scanned_bins_;
    current_week_ = static_cast<std::uint32_t>((scanned_bins_ - 1) / bins_per_week_);
  }
}

void Daemon::roll_week(std::uint32_t completed_week) {
  ThresholdUpdate update;
  update.week = completed_week + 1;
  if (config_.mode == ThresholdMode::WeeklyRollover) {
    for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
      const features::FeatureKind f = features::kAllFeatures[i];
      update.thresholds[i] =
          week_learner_->observations(f) > 0 ? week_learner_->threshold(f) : kInf;
    }
    // Fresh learner for the week now starting: the batch policy trains on
    // exactly one week, so the incremental learner must too.
    week_learner_ = std::make_unique<OnlineThresholdLearner>(
        config_.percentile, config_.estimator, config_.gk_epsilon);
  } else {
    for (std::size_t i = 0; i < features::kFeatureCount; ++i) {
      update.thresholds[i] = rolling_[i].threshold();
    }
  }

  m_rollovers_.inc();
  std::lock_guard<std::mutex> lock(state_mu_);
  if (config_.mode == ThresholdMode::WeeklyRollover) {
    active_thresholds_ = update.thresholds;
  }
  updates_.push_back(update);
  ++stats_.rollovers;
}

void Daemon::emit_alert(features::FeatureKind feature, std::uint64_t bin, double observed,
                        double threshold_in_force) {
  Alert alert;
  alert.user_id = config_.user_id;
  alert.feature = feature;
  alert.bin = bin;
  alert.bin_start = config_.pipeline.grid.bin_start(bin);
  alert.observed = observed;
  alert.threshold = threshold_in_force;

  m_alerts_.inc();
  std::lock_guard<std::mutex> lock(state_mu_);
  alerts_.push_back(alert);
  ++stats_.alerts_emitted;
  batcher_.submit(alert);  // may flush into console_; both live under state_mu_
}

DaemonResult Daemon::finish() {
  MONOHIDS_EXPECT(!finished_, "daemon already finished");

  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      stopping_ = true;
      paused_ = false;  // a paused daemon still drains its queue on shutdown
    }
    queue_ready_.notify_all();
    queue_space_.notify_all();
    worker_.join();
  }
  finished_ = true;

  // Flush the flow table exactly like the batch pipeline, then scan every
  // bin the live watermark had not reached — including trailing all-zero
  // bins, so weekly learners see full week slices and rollover accounting
  // matches the batch train/test split bin for bin.
  features::PipelineResult pipeline = session_.finish();
  const std::uint64_t total_bins =
      pipeline.matrix.of(features::FeatureKind::TcpConnections).values().size();
  scan_bins(pipeline.matrix, total_bins);

  {
    std::lock_guard<std::mutex> lock(state_mu_);
    batcher_.flush(config_.pipeline.grid.bin_start(total_bins));
  }
  m_queue_depth_.set(0);

  DaemonResult result(config_.user_id + 1, console_weeks(config_.pipeline.horizon));
  result.pipeline = std::move(pipeline);
  std::lock_guard<std::mutex> lock(state_mu_);
  result.alerts = std::move(alerts_);
  result.rollovers = std::move(updates_);
  result.console = std::move(console_);
  result.stats = stats_;
  return result;
}

DaemonStats Daemon::stats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return stats_;
}

double Daemon::threshold(features::FeatureKind feature) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return active_thresholds_[features::index_of(feature)];
}

std::uint32_t Daemon::current_week() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return current_week_;
}

}  // namespace monohids::hids
