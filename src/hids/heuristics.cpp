#include "hids/heuristics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "stats/classification.hpp"
#include "stats/kernels.hpp"
#include "util/error.hpp"

namespace monohids::hids {
namespace {

// Shared batched sweep for the FN-aware heuristics: candidate thresholds are
// ascending (candidate_thresholds emits distinct training values in order),
// so one exceedance merge-scan plus one rank_grid pass replaces the
// 2 * |candidates| binary-search calls of the per-threshold loop. Both
// fill-ins are bit-identical to the per-call operations, so the selection
// loops below pick the same threshold the seed path picks.
struct SweepRates {
  std::vector<double> thresholds;
  std::vector<double> fp;  ///< fp[j] = training.exceedance(thresholds[j])
  std::vector<double> fn;  ///< fn[j] = attack.mean_fn(training, thresholds[j])
};

SweepRates batched_sweep(const stats::EmpiricalDistribution& training,
                         const AttackModel& attack) {
  SweepRates rates;
  rates.thresholds = candidate_thresholds(training);
  rates.fp.resize(rates.thresholds.size());
  rates.fn.resize(rates.thresholds.size());
  training.exceedance_batch(rates.thresholds, rates.fp);
  attack.mean_fn_batch(training, rates.thresholds, rates.fn);
  return rates;
}

}  // namespace
}  // namespace monohids::hids

namespace monohids::hids {

std::vector<double> candidate_thresholds(const stats::EmpiricalDistribution& training) {
  MONOHIDS_EXPECT(!training.empty(), "cannot derive candidates from empty training data");
  std::vector<double> candidates;
  const auto samples = training.samples();
  candidates.reserve(samples.size() + 1);
  for (double v : samples) {
    if (candidates.empty() || candidates.back() != v) candidates.push_back(v);
  }
  candidates.push_back(training.max() + 1.0);  // "never alarm" endpoint
  return candidates;
}

PercentileHeuristic::PercentileHeuristic(double q) : q_(q) {
  MONOHIDS_EXPECT(q > 0.0 && q < 1.0, "percentile must be in (0,1)");
}

double PercentileHeuristic::compute(const stats::EmpiricalDistribution& training,
                                    const AttackModel* /*attack*/) const {
  return training.quantile(q_);
}

std::string PercentileHeuristic::name() const {
  std::ostringstream os;
  os << "percentile-" << q_ * 100.0;
  return os.str();
}

MeanSigmaHeuristic::MeanSigmaHeuristic(double k) : k_(k) {
  MONOHIDS_EXPECT(k >= 0.0, "sigma multiplier must be non-negative");
}

double MeanSigmaHeuristic::compute(const stats::EmpiricalDistribution& training,
                                   const AttackModel* /*attack*/) const {
  return training.mean() + k_ * training.stddev();
}

std::string MeanSigmaHeuristic::name() const {
  std::ostringstream os;
  os << "mean+" << k_ << "sigma";
  return os.str();
}

double FMeasureHeuristic::compute(const stats::EmpiricalDistribution& training,
                                  const AttackModel* attack) const {
  MONOHIDS_EXPECT(attack != nullptr && !attack->sizes.empty(),
                  "F-measure heuristic requires an attack model");
  double best_t = training.max();
  double best_f = -1.0;
  if (stats::kernels::batching_enabled()) {
    const SweepRates rates = batched_sweep(training, *attack);
    for (std::size_t j = 0; j < rates.thresholds.size(); ++j) {
      const double tp = 1.0 - rates.fn[j];
      const double fp = rates.fp[j];
      const double prec = (tp + fp) > 0.0 ? tp / (tp + fp) : 0.0;
      const double rec = tp;
      const double f = (prec + rec) > 0.0 ? 2.0 * prec * rec / (prec + rec) : 0.0;
      if (f > best_f) {
        best_f = f;
        best_t = rates.thresholds[j];
      }
    }
    return best_t;
  }
  for (double t : candidate_thresholds(training)) {
    // Precision/recall over the implied labelled set: every (benign sample)
    // is a negative; every (benign + b) is a positive, uniformly over b.
    const double fp_rate = training.exceedance(t);
    const double fn_rate = attack->mean_fn(training, t);
    const double tp = 1.0 - fn_rate;          // per-positive mass detected
    const double fp = fp_rate;                // per-negative mass alarmed
    const double prec = (tp + fp) > 0.0 ? tp / (tp + fp) : 0.0;
    const double rec = tp;
    const double f = (prec + rec) > 0.0 ? 2.0 * prec * rec / (prec + rec) : 0.0;
    if (f > best_f) {
      best_f = f;
      best_t = t;
    }
  }
  return best_t;
}

std::string FMeasureHeuristic::name() const { return "f-measure"; }

UtilityHeuristic::UtilityHeuristic(double w) : w_(w) {
  MONOHIDS_EXPECT(w >= 0.0 && w <= 1.0, "utility weight must be in [0,1]");
}

double UtilityHeuristic::compute(const stats::EmpiricalDistribution& training,
                                 const AttackModel* attack) const {
  MONOHIDS_EXPECT(attack != nullptr && !attack->sizes.empty(),
                  "utility heuristic requires an attack model");
  double best_t = training.max();
  double best_u = -2.0;
  if (stats::kernels::batching_enabled()) {
    const SweepRates rates = batched_sweep(training, *attack);
    for (std::size_t j = 0; j < rates.thresholds.size(); ++j) {
      const double u = stats::utility(rates.fn[j], rates.fp[j], w_);
      if (u > best_u) {
        best_u = u;
        best_t = rates.thresholds[j];
      }
    }
    return best_t;
  }
  for (double t : candidate_thresholds(training)) {
    const double fp_rate = training.exceedance(t);
    const double fn_rate = attack->mean_fn(training, t);
    const double u = stats::utility(fn_rate, fp_rate, w_);
    if (u > best_u) {
      best_u = u;
      best_t = t;
    }
  }
  return best_t;
}

std::string UtilityHeuristic::name() const {
  std::ostringstream os;
  os << "utility-w" << w_;
  return os.str();
}

}  // namespace monohids::hids
