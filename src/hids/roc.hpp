// ROC analysis of threshold detectors.
//
// The paper fixes thresholds with heuristics and reports one operating
// point per policy; a library user choosing their own trade-off wants the
// whole curve. roc_curve() sweeps every candidate threshold over a benign
// distribution and an additive attack model, yielding (FP, TP) pairs and
// the area under the curve — also the machinery behind comparing heuristics
// at a glance (every heuristic picks one point on this curve).
#pragma once

#include <vector>

#include "hids/attack_model.hpp"

namespace monohids::hids {

struct RocPoint {
  double threshold = 0.0;
  double fp_rate = 0.0;  ///< P(benign bin alarms)
  double tp_rate = 0.0;  ///< mean over the attack sweep of P(attacked bin alarms)
};

/// Points ordered by descending threshold, so FP/TP rise monotonically from
/// (0,0)-ish toward (1,1). Includes the "never alarm" sentinel endpoint.
[[nodiscard]] std::vector<RocPoint> roc_curve(const stats::EmpiricalDistribution& benign,
                                              const AttackModel& attack);

/// Area under the ROC curve by trapezoidal integration over the curve's FP
/// range, extended to FP = 1 at the maximal TP. 0.5 = chance, 1 = perfect.
[[nodiscard]] double roc_auc(const std::vector<RocPoint>& curve);

/// The curve point closest to the perfect corner (0, 1) — a heuristic-free
/// "balanced" operating point used by the ablation bench as a reference.
[[nodiscard]] RocPoint closest_to_perfect(const std::vector<RocPoint>& curve);

}  // namespace monohids::hids
