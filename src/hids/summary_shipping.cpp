#include "hids/summary_shipping.hpp"

#include <algorithm>
#include <cmath>

#include "stats/quantile.hpp"
#include "util/error.hpp"

namespace monohids::hids {

double QuantileSummary::grid_probability(std::size_t i, std::size_t points) {
  MONOHIDS_EXPECT(points >= 4, "a summary needs at least four grid points");
  MONOHIDS_EXPECT(i < points, "grid slot out of range");
  const std::size_t body = points / 2;  // slots 0..body cover [0, 0.9]
  if (i <= body) {
    return 0.9 * static_cast<double>(i) / static_cast<double>(body);
  }
  return 0.9 + 0.1 * static_cast<double>(i - body) / static_cast<double>(points - 1 - body);
}

QuantileSummary QuantileSummary::from_samples(std::span<const double> samples,
                                              std::size_t points) {
  MONOHIDS_EXPECT(!samples.empty(), "cannot summarize an empty sample");
  MONOHIDS_EXPECT(points >= 4, "a summary needs at least four grid points");

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  QuantileSummary summary;
  summary.sample_count_ = samples.size();
  summary.values_.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    summary.values_.push_back(
        stats::quantile_interpolated_sorted(sorted, grid_probability(i, points)));
  }
  return summary;
}

std::vector<double> QuantileSummary::reconstruct(std::size_t resolution) const {
  MONOHIDS_EXPECT(!values_.empty(), "reconstructing an empty summary");
  MONOHIDS_EXPECT(resolution >= 1, "resolution must be positive");

  // Inverse-CDF interpolation on the (non-uniform) stored grid.
  const std::size_t points = values_.size();
  std::vector<double> samples;
  samples.reserve(resolution);
  std::size_t slot = 0;  // targets are increasing: walk the grid once
  for (std::size_t i = 0; i < resolution; ++i) {
    const double q = (static_cast<double>(i) + 0.5) / static_cast<double>(resolution);
    while (slot + 2 < points && grid_probability(slot + 1, points) < q) ++slot;
    const double q_lo = grid_probability(slot, points);
    const double q_hi = grid_probability(slot + 1, points);
    const double frac = std::clamp((q - q_lo) / (q_hi - q_lo), 0.0, 1.0);
    samples.push_back(values_[slot] + frac * (values_[slot + 1] - values_[slot]));
  }
  return samples;
}

stats::EmpiricalDistribution pooled_from_summaries(
    std::span<const QuantileSummary> summaries) {
  MONOHIDS_EXPECT(!summaries.empty(), "no summaries to pool");
  std::vector<double> pooled;
  for (const QuantileSummary& s : summaries) {
    // Resolution tracks the original evidence so hosts keep their weight in
    // the pooled percentile, exactly as raw pooling would.
    const auto resolution = static_cast<std::size_t>(s.sample_count());
    const auto samples = s.reconstruct(std::max<std::size_t>(1, resolution));
    pooled.insert(pooled.end(), samples.begin(), samples.end());
  }
  return stats::EmpiricalDistribution(std::move(pooled));
}

}  // namespace monohids::hids
