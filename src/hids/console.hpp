// The central IT operations console.
//
// Receives alert batches from every host, accounts them per user / feature /
// week, and answers the question behind Table 3: how many (false) alarms
// land at IT per week under each policy.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "hids/alerts.hpp"

namespace monohids::hids {

class CentralConsole {
 public:
  /// `user_count` sizes the per-user accounting; `weeks` the per-week bins.
  CentralConsole(std::uint32_t user_count, std::uint32_t weeks);

  /// Ingests one flushed batch.
  void ingest(const AlertBatch& batch);

  [[nodiscard]] std::uint64_t total_alerts() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t total_batches() const noexcept { return batches_; }
  [[nodiscard]] std::uint64_t alerts_of_user(std::uint32_t user) const;
  [[nodiscard]] std::uint64_t alerts_in_week(std::uint32_t week) const;
  [[nodiscard]] std::uint64_t alerts_of_feature(features::FeatureKind f) const;

  /// Mean alerts per week over the configured horizon.
  [[nodiscard]] double mean_alerts_per_week() const;

  /// Users sorted by descending alert volume (the "noisy host" report an
  /// operator would pull first).
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint64_t>> noisiest_users(
      std::size_t count) const;

 private:
  std::uint32_t weeks_;
  std::vector<std::uint64_t> per_user_;
  std::vector<std::uint64_t> per_week_;
  std::array<std::uint64_t, features::kFeatureCount> per_feature_{};
  std::uint64_t total_ = 0;
  std::uint64_t batches_ = 0;
};

}  // namespace monohids::hids
