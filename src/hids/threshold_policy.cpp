#include "hids/threshold_policy.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace monohids::hids {

ThresholdAssignment assign_thresholds(
    std::span<const stats::EmpiricalDistribution> training_users, const Grouper& grouper,
    const ThresholdHeuristic& heuristic, const AttackModel* attack, unsigned threads) {
  MONOHIDS_EXPECT(!training_users.empty(), "empty population");

  ThresholdAssignment out;
  out.groups = grouper.assign(training_users);
  MONOHIDS_EXPECT(out.groups.group_of_user.size() == training_users.size(),
                  "grouper returned the wrong population size");

  const auto members = out.groups.members();
  out.threshold_of_group.resize(out.groups.group_count);
  // Groups are independent (each pools its own members and runs the
  // heuristic on the pooled distribution), so they shard across threads;
  // each shard writes only threshold_of_group[g]. Pooling k-way-merges the
  // members' already-sorted sample spans into a per-worker scratch buffer —
  // no per-member copies, no re-sort — and hands the heuristic a non-owning
  // view over that buffer (valid for the duration of compute()).
  util::parallel_for(
      out.groups.group_count,
      [&](std::size_t g) {
        MONOHIDS_EXPECT(!members[g].empty(), "grouper produced an empty group");
        if (members[g].size() == 1) {
          out.threshold_of_group[g] =
              heuristic.compute(training_users[members[g].front()], attack);
          return;
        }
        thread_local std::vector<std::span<const double>> spans;
        thread_local std::vector<double> pooled_buffer;
        spans.clear();
        spans.reserve(members[g].size());
        for (std::uint32_t u : members[g]) spans.push_back(training_users[u].samples());
        stats::merge_sorted_spans(spans, pooled_buffer);
        // The heuristic sweeps a dense threshold x attack-size grid over the
        // pool, so the O(n + K) rank table pays for itself immediately.
        const auto pooled = stats::EmpiricalDistribution::view_of_sorted(
            pooled_buffer, /*with_rank_table=*/true);
        out.threshold_of_group[g] = heuristic.compute(pooled, attack);
      },
      threads);

  out.threshold_of_user.resize(training_users.size());
  for (std::size_t u = 0; u < training_users.size(); ++u) {
    out.threshold_of_user[u] = out.threshold_of_group[out.groups.group_of_user[u]];
  }
  return out;
}

std::vector<std::uint32_t> best_users(const ThresholdAssignment& assignment,
                                      std::size_t count,
                                      std::span<const double> tiebreak) {
  MONOHIDS_EXPECT(tiebreak.empty() || tiebreak.size() == assignment.threshold_of_user.size(),
                  "tiebreak vector must match the population");
  std::vector<std::uint32_t> order(assignment.threshold_of_user.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const double ta = assignment.threshold_of_user[a];
    const double tb = assignment.threshold_of_user[b];
    if (ta != tb) return ta < tb;
    if (!tiebreak.empty() && tiebreak[a] != tiebreak[b]) return tiebreak[a] < tiebreak[b];
    return a < b;
  });
  order.resize(std::min(count, order.size()));
  return order;
}

}  // namespace monohids::hids
