// Policy evaluation (paper §6 methodology).
//
// Thresholds are learned on one week and applied to the next; each user
// then experiences an operating point (FP_i, FN_i):
//   FP_i = P(g_test > T_i)                    — benign test bins that alarm,
//   FN_i = E_b[ P(g_test + b <= T_i) ]        — misses over the attack sweep,
//   U_i  = 1 − [w·FN_i + (1−w)·FP_i]          — the paper's utility.
// evaluate_policy() produces these for every user under one
// (grouper, heuristic) policy; evaluate_rounds() averages over several
// train→test week pairs (the paper uses wk1→wk2 and wk3→wk4).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "features/time_series.hpp"
#include "hids/threshold_policy.hpp"

namespace monohids::hids {

/// Builds each user's empirical distribution of `feature` over `week` from
/// their feature matrices. Users are independent, so the build fans out
/// over `threads` workers (0 = auto via util::default_thread_count(),
/// 1 = serial); the result is identical for every thread count.
[[nodiscard]] std::vector<stats::EmpiricalDistribution> week_distributions(
    std::span<const features::FeatureMatrix> users, features::FeatureKind feature,
    std::uint32_t week, unsigned threads = 0);

/// Memoization interface the evaluation pipeline threads through: a source
/// of precomputed per-user week distributions and threshold assignments.
/// Implementations must return results bit-identical to the direct
/// week_distributions / assign_thresholds calls for the same population and
/// be safe to call from multiple (non-pool) threads. sim::AnalysisCache is
/// the production implementation; evaluation APIs accept a null pointer to
/// mean "compute from scratch every time".
class DistributionCache {
 public:
  using DistributionSet = std::vector<stats::EmpiricalDistribution>;

  virtual ~DistributionCache() = default;

  /// Per-user distributions of `feature` over `week`.
  [[nodiscard]] virtual std::shared_ptr<const DistributionSet> week(
      features::FeatureKind feature, std::uint32_t week, unsigned threads) = 0;

  /// Threshold assignment for (feature, train_week, grouper, heuristic,
  /// attack). `attack` may be null for FN-unaware heuristics.
  [[nodiscard]] virtual std::shared_ptr<const ThresholdAssignment> thresholds(
      features::FeatureKind feature, std::uint32_t train_week, const Grouper& grouper,
      const ThresholdHeuristic& heuristic, const AttackModel* attack,
      unsigned threads) = 0;
};

struct UserOutcome {
  double threshold = 0.0;
  std::uint32_t group = 0;
  double fp_rate = 0.0;
  double fn_rate = 0.0;
  std::uint64_t weekly_false_alarms = 0;

  [[nodiscard]] double detection_rate() const noexcept { return 1.0 - fn_rate; }
  [[nodiscard]] double utility(double w) const noexcept {
    return 1.0 - (w * fn_rate + (1.0 - w) * fp_rate);
  }
};

struct PolicyOutcome {
  std::string policy_name;
  std::string heuristic_name;
  std::vector<UserOutcome> users;

  [[nodiscard]] std::vector<double> utilities(double w) const;
  [[nodiscard]] double mean_utility(double w) const;
  [[nodiscard]] std::uint64_t total_false_alarms() const;
};

/// Evaluates one policy for one train→test round. Threshold assignment and
/// the per-user (FP, FN) sweep shard over `threads` workers (0 = auto,
/// 1 = serial); outcomes land in per-user slots, so results are identical
/// for every thread count.
[[nodiscard]] PolicyOutcome evaluate_policy(
    std::span<const stats::EmpiricalDistribution> train,
    std::span<const stats::EmpiricalDistribution> test, const Grouper& grouper,
    const ThresholdHeuristic& heuristic, const AttackModel& attack, unsigned threads = 0);

/// Same, but with a precomputed threshold assignment (e.g. from a
/// DistributionCache) instead of running grouping + heuristics inline.
/// `policy_name` / `heuristic_name` label the outcome.
[[nodiscard]] PolicyOutcome evaluate_policy(
    std::span<const stats::EmpiricalDistribution> train,
    std::span<const stats::EmpiricalDistribution> test,
    const ThresholdAssignment& assignment, std::string policy_name,
    std::string heuristic_name, const AttackModel& attack, unsigned threads = 0);

/// One train→test week pair.
struct EvaluationRound {
  std::uint32_t train_week = 0;
  std::uint32_t test_week = 1;
};

/// Runs several rounds and averages each user's outcomes across rounds
/// (thresholds/groups reported from the last round; alarm counts are
/// per-week means rounded to the nearest integer). When `cache` is non-null
/// it must cover the same `users` population; week distributions and
/// threshold assignments are then fetched through it (memoized) instead of
/// rebuilt per round — the result is bit-identical either way.
[[nodiscard]] PolicyOutcome evaluate_rounds(
    std::span<const features::FeatureMatrix> users, features::FeatureKind feature,
    std::span<const EvaluationRound> rounds, const Grouper& grouper,
    const ThresholdHeuristic& heuristic, const AttackModel& attack, unsigned threads = 0,
    DistributionCache* cache = nullptr);

/// Replay outcome for a real attack overlaid on the test week: detection is
/// measured only on bins where the attack is active (b > 0).
struct ReplayOutcome {
  double fp_rate = 0.0;
  double detection_rate = 0.0;
};

[[nodiscard]] ReplayOutcome evaluate_replay(std::span<const double> benign_test_bins,
                                            std::span<const double> attack_bins,
                                            double threshold);

/// Joint (any-of-six-features) alarm analysis. A behavioral HIDS watches
/// all features concurrently and pages on any exceedance, so the user-felt
/// false-positive rate is the JOINT rate — strictly above every single
/// feature's, but below their sum when features co-fire within a bin
/// (bursts raise several counters at once).
struct JointAlarmOutcome {
  double joint_fp_rate = 0.0;                              ///< P(any feature fires)
  std::array<double, features::kFeatureCount> per_feature{};  ///< marginal rates
  double sum_of_marginals = 0.0;
  /// sum_of_marginals / joint: >1 means features co-fire (alarms cluster in
  /// the same bins), the dedup factor an IT console experiences.
  [[nodiscard]] double coincidence_factor() const noexcept {
    return joint_fp_rate > 0.0 ? sum_of_marginals / joint_fp_rate : 1.0;
  }
};

/// Scans `week` of one host's matrix against per-feature thresholds.
[[nodiscard]] JointAlarmOutcome joint_alarm_rate(
    const features::FeatureMatrix& matrix, std::uint32_t week,
    const std::array<double, features::kFeatureCount>& thresholds);

}  // namespace monohids::hids
