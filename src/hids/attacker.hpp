// Attacker models (paper §3 and §6.2).
//
// Both attackers add traffic b on top of the user's own g (the additive
// threat model):
//   - the naive attacker knows nothing and injects a fixed per-bin volume;
//     the question is what fraction of differently-configured hosts detect
//     a given size (Fig. 4a);
//   - the resourceful (mimicry) attacker has profiled the host — it knows
//     P(g) and the threshold T — and injects the largest volume that still
//     evades detection with the chosen probability (Fig. 4b): the paper's
//     largest b with P(g + b < T) = 0.9.
#pragma once

#include <span>
#include <vector>

#include "stats/empirical.hpp"

namespace monohids::hids {

/// Per-user detection probability of a naive attack of per-bin size `size`:
/// P(g_test + size > T) over the user's test-week bins.
[[nodiscard]] double naive_detection_probability(const stats::EmpiricalDistribution& test,
                                                 double threshold, double size);

/// Fig. 4a series: for each size in `sizes`, the mean detection probability
/// across the population ("percentage of users raising alarms"). The
/// attack-size grid points are independent and shard over `threads`
/// workers (0 = auto, 1 = serial) with identical results.
[[nodiscard]] std::vector<double> naive_detection_curve(
    std::span<const stats::EmpiricalDistribution> test_users,
    std::span<const double> thresholds, std::span<const double> sizes,
    unsigned threads = 0);

struct ResourcefulAttacker {
  /// The attacker accepts detection with probability 1 - evasion_target.
  double evasion_target = 0.9;

  /// Largest per-bin volume that evades the host's detector with the target
  /// probability, computed from the attacker's own profile of the host
  /// (`profiled` — the paper's attacker measures P(g) itself, so this is
  /// the distribution its monitoring code observed, typically the training
  /// week).
  [[nodiscard]] double hidden_volume(const stats::EmpiricalDistribution& profiled,
                                     double threshold) const;

  /// Hidden volume for every user (Fig. 4b's boxplot input), sharded over
  /// `threads` workers (0 = auto, 1 = serial).
  [[nodiscard]] std::vector<double> hidden_volumes(
      std::span<const stats::EmpiricalDistribution> profiled_users,
      std::span<const double> thresholds, unsigned threads = 0) const;

  /// Realized evasion: probability the attack at `volume` actually stays
  /// under the threshold on the *test* week (the attacker's profile can be
  /// stale — this quantifies its real-world risk).
  [[nodiscard]] static double realized_evasion(const stats::EmpiricalDistribution& test,
                                               double threshold, double volume);
};

}  // namespace monohids::hids
