// Threshold-selection heuristics (paper §4).
//
// A heuristic maps a (possibly pooled) training distribution to a single
// detector threshold. The paper examines percentile detectors (the
// IT-survey favorite: 99th percentile), mean + k·sigma outlier rules,
// F-measure-optimal and utility-optimal thresholds; the latter two need an
// attack model to estimate false negatives.
#pragma once

#include <memory>
#include <string>

#include "hids/attack_model.hpp"
#include "stats/empirical.hpp"

namespace monohids::hids {

class ThresholdHeuristic {
 public:
  virtual ~ThresholdHeuristic() = default;

  /// Computes a threshold from training data. `attack` may be null for
  /// heuristics that do not model false negatives; FN-aware heuristics
  /// throw PreconditionError when it is missing.
  [[nodiscard]] virtual double compute(const stats::EmpiricalDistribution& training,
                                       const AttackModel* attack) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Identity string for memoization (sim::AnalysisCache): two heuristics
  /// with the same cache_key MUST compute identical thresholds on identical
  /// input. The built-in heuristics' names already encode every parameter,
  /// so the default suffices; override when adding a heuristic whose name
  /// omits configuration.
  [[nodiscard]] virtual std::string cache_key() const { return name(); }
};

/// T = the q-th percentile of the training distribution. The paper's
/// operator survey found ~99th percentile to be the common choice: it caps
/// the training false-positive rate at 1 − q by construction.
class PercentileHeuristic final : public ThresholdHeuristic {
 public:
  explicit PercentileHeuristic(double q);
  [[nodiscard]] double compute(const stats::EmpiricalDistribution& training,
                               const AttackModel* attack) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double percentile() const noexcept { return q_; }

 private:
  double q_;
};

/// T = mean + k·sigma of the training distribution.
class MeanSigmaHeuristic final : public ThresholdHeuristic {
 public:
  explicit MeanSigmaHeuristic(double k);
  [[nodiscard]] double compute(const stats::EmpiricalDistribution& training,
                               const AttackModel* attack) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double k_;
};

/// T maximizing the F-measure of attack detection on the training data:
/// positives are (training + b) samples for each attack size b, negatives
/// are the raw training samples.
class FMeasureHeuristic final : public ThresholdHeuristic {
 public:
  FMeasureHeuristic() = default;
  [[nodiscard]] double compute(const stats::EmpiricalDistribution& training,
                               const AttackModel* attack) const override;
  [[nodiscard]] std::string name() const override;
};

/// T maximizing the paper's utility U(T) = 1 − [w·FN(T) + (1−w)·FP(T)]
/// estimated on the training data (Fig. 3's "utility heuristic", default
/// w = 0.4).
class UtilityHeuristic final : public ThresholdHeuristic {
 public:
  explicit UtilityHeuristic(double w);
  [[nodiscard]] double compute(const stats::EmpiricalDistribution& training,
                               const AttackModel* attack) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double weight() const noexcept { return w_; }

 private:
  double w_;
};

/// Candidate thresholds shared by the optimizing heuristics: the unique
/// training values plus one step beyond the maximum.
[[nodiscard]] std::vector<double> candidate_thresholds(
    const stats::EmpiricalDistribution& training);

}  // namespace monohids::hids
