#include "hids/detector.hpp"

#include "stats/kernels.hpp"
#include "util/error.hpp"

namespace monohids::hids {

std::uint64_t ThresholdDetector::count_alarms(std::span<const double> bins) const noexcept {
  if (stats::kernels::batching_enabled()) {
    return stats::kernels::active().count_exceed(bins, threshold());
  }
  std::uint64_t count = 0;
  for (double v : bins) {
    if (alarms(v)) ++count;
  }
  return count;
}

double ThresholdDetector::alarm_rate(std::span<const double> bins) const noexcept {
  if (bins.empty()) return 0.0;
  return static_cast<double>(count_alarms(bins)) / static_cast<double>(bins.size());
}

HostHids::HostHids(std::uint32_t user_id) : user_id_(user_id) {}

void HostHids::configure(features::FeatureKind feature, double threshold) {
  detectors_[features::index_of(feature)].set_threshold(threshold);
}

std::uint64_t HostHids::scan(const features::FeatureMatrix& observed,
                             const AlertSink& sink) const {
  return scan_range(observed, 0, observed.series.front().bin_count(), sink);
}

std::uint64_t HostHids::scan_range(const features::FeatureMatrix& observed,
                                   std::size_t first_bin, std::size_t last_bin,
                                   const AlertSink& sink) const {
  MONOHIDS_EXPECT(first_bin <= last_bin &&
                      last_bin <= observed.series.front().bin_count(),
                  "scan range outside the matrix");
  std::uint64_t emitted = 0;
  // Scan bin-major so alerts leave the host in time order (batching needs
  // monotone timestamps).
  for (std::size_t b = first_bin; b < last_bin; ++b) {
    for (features::FeatureKind f : features::kAllFeatures) {
      const auto& series = observed.of(f);
      const auto& det = detectors_[features::index_of(f)];
      const double v = series.at(b);
      if (!det.alarms(v)) continue;
      Alert alert;
      alert.user_id = user_id_;
      alert.feature = f;
      alert.bin = b;
      alert.bin_start = series.grid().bin_start(b);
      alert.observed = v;
      alert.threshold = det.threshold();
      sink(alert);
      ++emitted;
    }
  }
  return emitted;
}

}  // namespace monohids::hids
