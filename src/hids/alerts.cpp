#include "hids/alerts.hpp"

#include "util/error.hpp"

namespace monohids::hids {

AlertBatcher::AlertBatcher(std::uint32_t user_id, util::Duration batch_interval, BatchSink sink)
    : user_id_(user_id), interval_(batch_interval), sink_(std::move(sink)),
      next_flush_(batch_interval) {
  MONOHIDS_EXPECT(interval_ > 0, "batch interval must be positive");
  MONOHIDS_EXPECT(static_cast<bool>(sink_), "batch sink must be callable");
}

void AlertBatcher::submit(const Alert& alert) {
  MONOHIDS_EXPECT(alert.user_id == user_id_, "alert from the wrong host");
  while (alert.bin_start >= next_flush_) {
    flush(next_flush_);
    next_flush_ += interval_;
  }
  pending_.push_back(alert);
}

void AlertBatcher::flush(util::Timestamp now) {
  if (pending_.empty()) return;
  AlertBatch batch;
  batch.user_id = user_id_;
  batch.flushed_at = now;
  batch.alerts = std::move(pending_);
  pending_.clear();
  ++batches_sent_;
  sink_(batch);
}

}  // namespace monohids::hids
