#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace monohids::util {

namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

double apply_scale(double v, Scale scale) {
  return scale == Scale::Log10 ? std::log10(v) : v;
}

bool usable(double v, Scale scale) {
  if (!std::isfinite(v)) return false;
  return scale != Scale::Log10 || v > 0.0;
}

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void extend(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  [[nodiscard]] bool valid() const { return lo <= hi; }
  void pad_if_degenerate() {
    if (lo == hi) {
      lo -= 0.5;
      hi += 0.5;
    }
  }
};

std::string format_tick(double scaled, Scale scale) {
  std::ostringstream os;
  os.precision(4);
  if (scale == Scale::Log10) {
    os << std::pow(10.0, scaled);
  } else {
    os << scaled;
  }
  return os.str();
}

/// Shared canvas-based renderer for line charts and scatter plots.
std::string render_points(const std::vector<Series>& series, const ChartOptions& options,
                          bool connect) {
  MONOHIDS_EXPECT(options.width >= 16 && options.height >= 4, "chart area too small");

  Range xr, yr;
  for (const auto& s : series) {
    MONOHIDS_EXPECT(s.x.size() == s.y.size(), "series x/y lengths differ: " + s.name);
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!usable(s.x[i], options.x_scale) || !usable(s.y[i], options.y_scale)) continue;
      xr.extend(apply_scale(s.x[i], options.x_scale));
      yr.extend(apply_scale(s.y[i], options.y_scale));
    }
  }
  if (options.y_min && usable(*options.y_min, options.y_scale)) {
    yr.extend(apply_scale(*options.y_min, options.y_scale));
  }
  if (options.y_max && usable(*options.y_max, options.y_scale)) {
    yr.extend(apply_scale(*options.y_max, options.y_scale));
  }
  if (!xr.valid() || !yr.valid()) return "(no drawable points)\n";
  xr.pad_if_degenerate();
  yr.pad_if_degenerate();

  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> canvas(h, std::string(w, ' '));

  auto to_col = [&](double xs) {
    return std::clamp(static_cast<int>(std::lround((xs - xr.lo) / (xr.hi - xr.lo) * (w - 1))), 0,
                      w - 1);
  };
  auto to_row = [&](double ys) {
    // row 0 is the top of the canvas
    return std::clamp(
        static_cast<int>(std::lround((yr.hi - ys) / (yr.hi - yr.lo) * (h - 1))), 0, h - 1);
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % std::size(kGlyphs)];
    const auto& s = series[si];
    int prev_col = -1, prev_row = -1;
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!usable(s.x[i], options.x_scale) || !usable(s.y[i], options.y_scale)) {
        prev_col = -1;
        continue;
      }
      const int col = to_col(apply_scale(s.x[i], options.x_scale));
      const int row = to_row(apply_scale(s.y[i], options.y_scale));
      if (connect && prev_col >= 0) {
        // draw a crude line by stepping along the longer axis
        const int steps = std::max(std::abs(col - prev_col), std::abs(row - prev_row));
        for (int k = 1; k < steps; ++k) {
          const int c = prev_col + (col - prev_col) * k / steps;
          const int r = prev_row + (row - prev_row) * k / steps;
          if (canvas[r][c] == ' ') canvas[r][c] = '.';
        }
      }
      canvas[row][col] = glyph;
      prev_col = col;
      prev_row = row;
    }
  }

  std::ostringstream os;
  if (!options.y_label.empty()) os << options.y_label << '\n';
  const std::string top_tick = format_tick(yr.hi, options.y_scale);
  const std::string bottom_tick = format_tick(yr.lo, options.y_scale);
  const std::size_t margin = std::max(top_tick.size(), bottom_tick.size()) + 1;
  for (int r = 0; r < h; ++r) {
    std::string tick;
    if (r == 0) tick = top_tick;
    if (r == h - 1) tick = bottom_tick;
    os << std::string(margin - tick.size(), ' ') << tick << '|' << canvas[r] << '\n';
  }
  os << std::string(margin, ' ') << '+' << std::string(w, '-') << '\n';
  const std::string left_tick = format_tick(xr.lo, options.x_scale);
  const std::string right_tick = format_tick(xr.hi, options.x_scale);
  os << std::string(margin + 1, ' ') << left_tick
     << std::string(
            std::max<std::size_t>(1, static_cast<std::size_t>(w) - left_tick.size() -
                                         right_tick.size()),
            ' ')
     << right_tick << '\n';
  if (!options.x_label.empty()) {
    os << std::string(margin + 1 + w / 2 - options.x_label.size() / 2, ' ') << options.x_label
       << '\n';
  }
  os << "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "  " << kGlyphs[si % std::size(kGlyphs)] << " = " << series[si].name;
  }
  os << '\n';
  return os.str();
}

}  // namespace

std::string render_line_chart(const std::vector<Series>& series, const ChartOptions& options) {
  return render_points(series, options, /*connect=*/true);
}

std::string render_scatter(const std::vector<Series>& series, const ChartOptions& options) {
  return render_points(series, options, /*connect=*/false);
}

std::string render_boxplot(const std::vector<LabelledBox>& boxes, const ChartOptions& options) {
  MONOHIDS_EXPECT(!boxes.empty(), "boxplot needs at least one box");
  Range r;
  for (const auto& b : boxes) {
    for (double v : {b.stats.whisker_low, b.stats.q1, b.stats.median, b.stats.q3,
                     b.stats.whisker_high}) {
      if (usable(v, options.x_scale)) r.extend(apply_scale(v, options.x_scale));
    }
  }
  if (!r.valid()) return "(no drawable boxes)\n";
  r.pad_if_degenerate();

  std::size_t label_width = 0;
  for (const auto& b : boxes) label_width = std::max(label_width, b.label.size());

  const int w = options.width;
  auto to_col = [&](double v) {
    const double s = apply_scale(v, options.x_scale);
    return std::clamp(static_cast<int>(std::lround((s - r.lo) / (r.hi - r.lo) * (w - 1))), 0,
                      w - 1);
  };

  std::ostringstream os;
  for (const auto& b : boxes) {
    std::string line(w, ' ');
    const int lo = to_col(b.stats.whisker_low);
    const int q1 = to_col(b.stats.q1);
    const int med = to_col(b.stats.median);
    const int q3 = to_col(b.stats.q3);
    const int hi = to_col(b.stats.whisker_high);
    for (int c = lo; c <= hi; ++c) line[c] = '-';
    for (int c = q1; c <= q3; ++c) line[c] = '=';
    line[lo] = '|';
    line[hi] = '|';
    if (q1 != med && q3 != med) {
      line[q1] = '[';
      line[q3] = ']';
    }
    line[med] = '#';
    os << b.label << std::string(label_width - b.label.size(), ' ') << " |" << line << '|';
    if (b.stats.outliers > 0) os << "  (outliers: " << b.stats.outliers << ')';
    os << '\n';
  }
  os << std::string(label_width, ' ') << " +" << std::string(w, '-') << "+\n";
  const std::string left = format_tick(r.lo, options.x_scale);
  const std::string right = format_tick(r.hi, options.x_scale);
  os << std::string(label_width + 2, ' ') << left
     << std::string(std::max<std::size_t>(
                        1, static_cast<std::size_t>(w) - left.size() - right.size()),
                    ' ')
     << right << '\n';
  if (!options.x_label.empty()) os << std::string(label_width + 2, ' ') << options.x_label << '\n';
  return os.str();
}

}  // namespace monohids::util
