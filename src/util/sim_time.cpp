// sim_time is header-only; this translation unit exists so the library has a
// stable archive member for the header and to hold future non-inline helpers.
#include "util/sim_time.hpp"

namespace monohids::util {

static_assert(kMicrosPerWeek == 604'800'000'000ULL);
static_assert(BinGrid::minutes(15).bin_count(kMicrosPerWeek) == 672);
static_assert(day_of_week(0) == 0);
static_assert(is_weekend(5 * kMicrosPerDay));
static_assert(!is_weekend(4 * kMicrosPerDay));

}  // namespace monohids::util
