// ASCII table renderer for experiment output.
//
// Bench binaries print each paper table in the same row/column layout the
// paper uses; this renderer handles column sizing and alignment.
#pragma once

#include <string>
#include <vector>

namespace monohids::util {

/// Column alignment within a rendered table.
enum class Align { Left, Right };

/// Accumulates rows of string cells and renders them with padded columns,
/// a header separator, and an outer border.
class TextTable {
 public:
  /// `headers` fixes the column count; every later row must match it.
  explicit TextTable(std::vector<std::string> headers);

  /// Per-column alignment; defaults to Left for all columns.
  void set_alignment(std::vector<Align> alignment);

  /// Appends a data row (must have exactly as many cells as headers).
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders the table, e.g.
  ///   +--------+-------+
  ///   | policy | count |
  ///   +--------+-------+
  ///   | homog  |  1594 |
  ///   +--------+-------+
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> alignment_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `decimals` fixed decimal places.
[[nodiscard]] std::string fixed(double value, int decimals);

}  // namespace monohids::util
