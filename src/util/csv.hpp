// CSV emission and parsing.
//
// Experiment binaries write their data series as CSV (to stdout or a file)
// so figures can be re-plotted externally; tests round-trip through the
// parser. Quoting follows RFC 4180: fields containing comma, quote, CR or LF
// are quoted, embedded quotes are doubled.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace monohids::util {

/// Escapes one field per RFC 4180.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Writes rows of string fields to a stream.
class CsvWriter {
 public:
  /// The stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with enough digits to round-trip.
  static std::string format(double value);
  static std::string format(std::int64_t value);
  static std::string format(std::uint64_t value);

 private:
  std::ostream* out_;
};

/// Parses one CSV line into fields (RFC 4180 quoting). Multi-line quoted
/// fields are not supported — the experiment outputs never produce them.
[[nodiscard]] std::vector<std::string> csv_parse_line(std::string_view line);

/// Parses a whole CSV document into rows of fields.
[[nodiscard]] std::vector<std::vector<std::string>> csv_parse(std::string_view text);

}  // namespace monohids::util
