// ASCII chart rendering for the benchmark harness.
//
// Each paper figure is regenerated as (a) a CSV data series and (b) an ASCII
// rendering that shows the *shape* (who wins, where crossovers fall) directly
// in the terminal: line charts for series vs a swept parameter, scatter plots
// for per-user points, and horizontal box plots for distribution comparisons.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace monohids::util {

/// Axis scaling for charts.
enum class Scale { Linear, Log10 };

/// One named series of (x, y) points for a line chart.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Options controlling chart rendering.
struct ChartOptions {
  int width = 72;    ///< plot area width in characters
  int height = 20;   ///< plot area height in characters
  Scale x_scale = Scale::Linear;
  Scale y_scale = Scale::Linear;
  std::string x_label;
  std::string y_label;
  std::optional<double> y_min;  ///< override the auto y range
  std::optional<double> y_max;
};

/// Renders one or more series as an ASCII line chart; each series uses a
/// distinct glyph and appears in the legend. Log-scaled axes drop
/// non-positive values (the paper's log-scale figures do the same).
[[nodiscard]] std::string render_line_chart(const std::vector<Series>& series,
                                            const ChartOptions& options);

/// Renders a scatter plot of per-point data (one glyph per labelled group).
[[nodiscard]] std::string render_scatter(const std::vector<Series>& series,
                                         const ChartOptions& options);

/// Five-number summary used by box plots.
struct BoxStats {
  double whisker_low = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double whisker_high = 0;
  std::size_t outliers = 0;  ///< points beyond the whiskers
};

/// One labelled box in a box-plot chart.
struct LabelledBox {
  std::string label;
  BoxStats stats;
};

/// Renders horizontal box plots on a shared axis, e.g.
///   homogeneous  |----[==|====]--------|   (o 3)
[[nodiscard]] std::string render_boxplot(const std::vector<LabelledBox>& boxes,
                                         const ChartOptions& options);

}  // namespace monohids::util
