// Parallel execution substrate: a thread pool plus index-sharded loops.
//
// Per-host behavioral detection is embarrassingly parallel: every host has
// its own trace, distributions and thresholds, so scenario generation,
// feature extraction and threshold/ROC sweeps all reduce to "run f(i) for
// i in [0, n) and collect results by index". parallel_for / parallel_map
// are that primitive. Determinism is preserved by construction: each index
// computes from its own inputs (per-user RNG streams are derived, not
// shared — see rng.hpp) and writes only slot i of a pre-sized output, so
// the result is identical for any thread count, and `threads = 1` executes
// the exact serial loop on the calling thread (no pool involvement,
// byte-for-byte the pre-parallel behavior).
//
// Thread-count resolution, everywhere a `threads` knob appears:
//   threads >= 1  -> use exactly that many shards,
//   threads == 0  -> default_thread_count(): the MONOHIDS_THREADS
//                    environment variable if set, else
//                    std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace monohids::util {

/// Shard count used when a `threads` knob is 0 ("auto"): MONOHIDS_THREADS
/// if set to a positive integer, else hardware_concurrency(), else 1.
[[nodiscard]] unsigned default_thread_count() noexcept;

/// Fixed-size worker pool running tasks in FIFO order. parallel_for
/// schedules on a process-wide shared() instance; standalone pools exist
/// mainly for tests.
class ThreadPool {
 public:
  /// Spawns `thread_count` workers (at least 1).
  explicit ThreadPool(unsigned thread_count);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Executes any still-queued tasks, then joins the workers.
  ~ThreadPool();

  [[nodiscard]] unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues one task. Tasks must not throw out of the pool — wrap bodies
  /// that can throw (parallel_for captures exceptions itself).
  void submit(std::function<void()> task);

  /// The process-wide pool, created on first use and sized by
  /// default_thread_count(). Tasks submitted here must never block on
  /// other pool tasks (parallel_for's caller does the waiting instead).
  static ThreadPool& shared();

  /// True when the calling thread is a pool worker. parallel_for uses this
  /// to degrade nested parallelism to a serial inner loop rather than
  /// deadlocking the pool on itself.
  [[nodiscard]] static bool on_worker_thread() noexcept;

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// Runs body(i) for every i in [0, count), sharded over `threads` workers
/// (0 = default_thread_count()). Indices are handed out dynamically, so
/// uneven per-index cost load-balances; bodies for distinct indices run
/// concurrently and must not share mutable state except through disjoint
/// output slots. threads <= 1 (or nested invocation from a pool worker)
/// runs the plain serial loop on the calling thread. The first exception
/// thrown by any body is rethrown on the calling thread after all shards
/// stop (remaining indices are abandoned).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  unsigned threads = 0);

/// parallel_for that collects fn(i) into a pre-sized vector, preserving
/// index order regardless of execution order. The result type must be
/// default-constructible and movable.
template <typename Fn>
[[nodiscard]] auto parallel_map(std::size_t count, Fn&& fn, unsigned threads = 0)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
  using Result = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  std::vector<Result> out(count);
  parallel_for(
      count, [&](std::size_t i) { out[i] = fn(i); }, threads);
  return out;
}

}  // namespace monohids::util
