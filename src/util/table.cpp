#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace monohids::util {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MONOHIDS_EXPECT(!headers_.empty(), "a table needs at least one column");
  alignment_.assign(headers_.size(), Align::Left);
}

void TextTable::set_alignment(std::vector<Align> alignment) {
  MONOHIDS_EXPECT(alignment.size() == headers_.size(),
                  "alignment vector must match column count");
  alignment_ = std::move(alignment);
}

void TextTable::add_row(std::vector<std::string> cells) {
  MONOHIDS_EXPECT(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      s += ' ';
      if (alignment_[c] == Align::Right) s += std::string(pad, ' ');
      s += row[c];
      if (alignment_[c] == Align::Left) s += std::string(pad, ' ');
      s += " |";
    }
    s += "\n";
    return s;
  };

  std::string out = rule();
  out += emit_row(headers_);
  out += rule();
  for (const auto& row : rows_) out += emit_row(row);
  out += rule();
  return out;
}

std::string fixed(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

}  // namespace monohids::util
