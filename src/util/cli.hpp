// Tiny command-line flag parser used by the bench / example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Every
// binary registers its flags with defaults and help text so `--help` prints
// a uniform usage page; unknown flags are an error (catches typos in
// experiment sweeps).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace monohids::util {

/// Declarative flag set. Register flags, then parse(argc, argv), then read
/// typed values. Parsing throws InputError on malformed input.
class CliFlags {
 public:
  /// `program_summary` is shown at the top of --help output.
  explicit CliFlags(std::string program_summary);

  CliFlags& add_int(std::string name, std::int64_t default_value, std::string help);
  CliFlags& add_double(std::string name, double default_value, std::string help);
  CliFlags& add_string(std::string name, std::string default_value, std::string help);
  CliFlags& add_bool(std::string name, bool default_value, std::string help);

  /// Overrides a registered int flag's default (value and --help text).
  /// For binaries that share a standard flag set but disagree on one
  /// default (e.g. fleet tools defaulting --scenario-version to 2). Must be
  /// called before parse().
  CliFlags& set_default_int(std::string_view name, std::int64_t default_value);

  /// Parses argv. Returns false if --help was requested (usage already
  /// printed to stdout); callers should then exit 0.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] const std::string& get_string(std::string_view name) const;
  [[nodiscard]] bool get_bool(std::string_view name) const;

  /// Renders the usage page.
  [[nodiscard]] std::string usage(std::string_view program_name) const;

 private:
  enum class Kind { Int, Double, String, Bool };
  struct Flag {
    Kind kind = Kind::Int;
    std::string help;
    std::string default_text;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
  };

  const Flag& find(std::string_view name, Kind kind) const;
  void set_from_text(Flag& flag, std::string_view name, std::string_view text);

  std::string summary_;
  std::map<std::string, Flag, std::less<>> flags_;
  std::vector<std::string> order_;
};

}  // namespace monohids::util
