// Deterministic random-number generation for reproducible experiments.
//
// Every experiment in the reproduction is seeded: a single master seed
// deterministically derives independent per-user / per-component streams, so
// adding a user or reordering generation does not perturb other users'
// traffic. We implement SplitMix64 (for seeding / stream derivation) and
// xoshiro256** (the workhorse engine), both satisfying
// std::uniform_random_bit_generator so they compose with <random>
// distributions.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace monohids::util {

/// SplitMix64: tiny, statistically strong 64-bit generator used to expand a
/// seed into the state of larger engines and to derive substream seeds.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast general-purpose 64-bit engine (Blackman & Vigna).
/// Used for all traffic synthesis; period 2^256 − 1.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by expanding `seed` through SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  // Defined inline: trace synthesis draws from this engine ~200M times per
  // scenario, so the step must not be an out-of-line call.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl_(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl_(state_[3], 45);
    return result;
  }

  /// Advances the state by 2^128 steps; gives 2^128 non-overlapping
  /// subsequences for parallel streams.
  void jump() noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl_(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Philox4x32-10: counter-mode engine (Salmon et al., "Parallel Random
/// Numbers: As Easy as 1, 2, 3"). Unlike the sequential engines above, every
/// output word is a pure function of (key, stream, word index): streams
/// keyed per (user, bin) are independent without any serial stepping between
/// them, which is what lets the v2 scenario contract render bins in any
/// order, in parallel, and in SIMD-width blocks (stats::kernels philox_fill
/// generates the same words 4+ blocks at a time, bit-identically).
///
/// Layout: the 2x32 Philox key is the split 64-bit `key`; the 4x32 counter
/// is (block_lo, block_hi, stream_lo, stream_hi), so one (key, stream) pair
/// owns 2^64 blocks of 4 output words. Draws are 32-bit words consumed in
/// block order; uniform01() maps one word to a double in [0, 1) at 32-bit
/// resolution (the v2 contract's draw grain — half the bits of the Xoshiro
/// path's 53, twice the throughput, and far more than the synthesis models
/// resolve).
class Philox4x32 {
 public:
  using result_type = std::uint32_t;

  explicit Philox4x32(std::uint64_t key, std::uint64_t stream = 0) noexcept
      : k0_(static_cast<std::uint32_t>(key)),
        k1_(static_cast<std::uint32_t>(key >> 32)),
        stream_(stream) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint32_t{0}; }

  result_type operator()() noexcept {
    if (index_ == 4) {
      buffer_ = block({static_cast<std::uint32_t>(block_),
                       static_cast<std::uint32_t>(block_ >> 32),
                       static_cast<std::uint32_t>(stream_),
                       static_cast<std::uint32_t>(stream_ >> 32)},
                      k0_, k1_);
      ++block_;
      index_ = 0;
    }
    return buffer_[index_++];
  }

  /// Uniform double in [0, 1) at 32-bit resolution: word * 2^-32 (exact).
  double uniform01() noexcept {
    return static_cast<double>(operator()()) * 0x1.0p-32;
  }

  /// Random access: positions the engine so the next word returned is word
  /// `draw_index` of this (key, stream) — O(1), no stepping.
  void seek(std::uint64_t draw_index) noexcept {
    block_ = draw_index / 4;
    const unsigned offset = static_cast<unsigned>(draw_index % 4);
    if (offset == 0) {
      index_ = 4;  // refill on the next call
    } else {
      buffer_ = block({static_cast<std::uint32_t>(block_),
                       static_cast<std::uint32_t>(block_ >> 32),
                       static_cast<std::uint32_t>(stream_),
                       static_cast<std::uint32_t>(stream_ >> 32)},
                      k0_, k1_);
      ++block_;
      index_ = offset;
    }
  }

  /// Index of the next word operator() will return.
  [[nodiscard]] std::uint64_t draw_index() const noexcept {
    return index_ == 4 ? block_ * 4 : (block_ - 1) * 4 + index_;
  }

  /// One 10-round Philox4x32 block: 4 counter words + 2 key words -> 4
  /// output words. Pure integer function; the bulk kernels
  /// (stats::kernels philox_fill) must match it word for word.
  [[nodiscard]] static std::array<std::uint32_t, 4> block(
      std::array<std::uint32_t, 4> counter, std::uint32_t k0,
      std::uint32_t k1) noexcept;

  /// Portable bulk form: writes `blocks` consecutive blocks (4 words each)
  /// of stream (key, stream) starting at block index `first_block` into
  /// `out`. Reference implementation for the SIMD kernels, with four
  /// independent blocks in flight so the multiply chains overlap.
  static void fill_blocks(std::uint64_t key, std::uint64_t stream,
                          std::uint64_t first_block, std::uint32_t* out,
                          std::size_t blocks) noexcept;

 private:
  std::uint32_t k0_, k1_;
  std::uint64_t stream_;
  std::uint64_t block_ = 0;
  std::array<std::uint32_t, 4> buffer_{};
  unsigned index_ = 4;
};

/// Derives a child seed from (master seed, label, index). Stable across
/// runs and platforms; labels keep independent components (e.g. "web",
/// "dns") decorrelated even for the same user index.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master, std::string_view label,
                                        std::uint64_t index) noexcept;

}  // namespace monohids::util
