// Deterministic random-number generation for reproducible experiments.
//
// Every experiment in the reproduction is seeded: a single master seed
// deterministically derives independent per-user / per-component streams, so
// adding a user or reordering generation does not perturb other users'
// traffic. We implement SplitMix64 (for seeding / stream derivation) and
// xoshiro256** (the workhorse engine), both satisfying
// std::uniform_random_bit_generator so they compose with <random>
// distributions.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace monohids::util {

/// SplitMix64: tiny, statistically strong 64-bit generator used to expand a
/// seed into the state of larger engines and to derive substream seeds.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast general-purpose 64-bit engine (Blackman & Vigna).
/// Used for all traffic synthesis; period 2^256 − 1.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state by expanding `seed` through SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  // Defined inline: trace synthesis draws from this engine ~200M times per
  // scenario, so the step must not be an out-of-line call.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl_(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl_(state_[3], 45);
    return result;
  }

  /// Advances the state by 2^128 steps; gives 2^128 non-overlapping
  /// subsequences for parallel streams.
  void jump() noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl_(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derives a child seed from (master seed, label, index). Stable across
/// runs and platforms; labels keep independent components (e.g. "web",
/// "dns") decorrelated even for the same user index.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master, std::string_view label,
                                        std::uint64_t index) noexcept;

}  // namespace monohids::util
