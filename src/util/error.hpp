// Error-handling primitives shared by every monohids library.
//
// The libraries throw exceptions for contract violations and unrecoverable
// conditions (Core Guidelines E.2/E.3): `MONOHIDS_ENSURE` guards runtime
// conditions (bad input, malformed trace), `MONOHIDS_EXPECT` guards
// programmer-facing preconditions on public APIs.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace monohids {

/// Base class for all errors raised by the monohids libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition of a public API.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Input data (trace file, CSV, CLI flag) was malformed or out of range.
class InputError : public Error {
 public:
  explicit InputError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_precondition(std::string_view expr, std::string_view file, int line,
                                     std::string_view msg);
[[noreturn]] void throw_input(std::string_view expr, std::string_view file, int line,
                              std::string_view msg);
}  // namespace detail

}  // namespace monohids

/// Validates a precondition of a public API; throws PreconditionError on failure.
#define MONOHIDS_EXPECT(cond, msg)                                                  \
  do {                                                                              \
    if (!(cond)) ::monohids::detail::throw_precondition(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Validates a runtime condition on external input; throws InputError on failure.
#define MONOHIDS_ENSURE(cond, msg)                                             \
  do {                                                                         \
    if (!(cond)) ::monohids::detail::throw_input(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
