#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

#include "util/error.hpp"

namespace monohids::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_emit_mutex;

constexpr std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel parse_log_level(std::string_view text) {
  if (text == "debug") return LogLevel::Debug;
  if (text == "info") return LogLevel::Info;
  if (text == "warn") return LogLevel::Warn;
  if (text == "error") return LogLevel::Error;
  if (text == "off") return LogLevel::Off;
  throw InputError("unknown log level: " + std::string(text));
}

namespace detail {
void emit(LogLevel level, std::string_view component, std::string_view message) {
  if (level < log_level()) return;
  std::scoped_lock lock(g_emit_mutex);
  std::cerr << '[' << level_name(level) << "] " << component << ": " << message << '\n';
}
}  // namespace detail

}  // namespace monohids::util
