#include "util/cli.hpp"

#include <charconv>
#include <iostream>
#include <sstream>

#include "util/error.hpp"

namespace monohids::util {

CliFlags::CliFlags(std::string program_summary) : summary_(std::move(program_summary)) {}

CliFlags& CliFlags::add_int(std::string name, std::int64_t default_value, std::string help) {
  Flag f;
  f.kind = Kind::Int;
  f.help = std::move(help);
  f.default_text = std::to_string(default_value);
  f.int_value = default_value;
  order_.push_back(name);
  flags_.emplace(std::move(name), std::move(f));
  return *this;
}

CliFlags& CliFlags::set_default_int(std::string_view name, std::int64_t default_value) {
  const auto it = flags_.find(name);
  MONOHIDS_EXPECT(it != flags_.end(), "flag was never registered: " + std::string(name));
  MONOHIDS_EXPECT(it->second.kind == Kind::Int,
                  "flag accessed with wrong type: " + std::string(name));
  it->second.int_value = default_value;
  it->second.default_text = std::to_string(default_value);
  return *this;
}

CliFlags& CliFlags::add_double(std::string name, double default_value, std::string help) {
  std::ostringstream os;
  os << default_value;
  Flag f;
  f.kind = Kind::Double;
  f.help = std::move(help);
  f.default_text = os.str();
  f.double_value = default_value;
  order_.push_back(name);
  flags_.emplace(std::move(name), std::move(f));
  return *this;
}

CliFlags& CliFlags::add_string(std::string name, std::string default_value, std::string help) {
  Flag f;
  f.kind = Kind::String;
  f.help = std::move(help);
  f.default_text = default_value;
  f.string_value = std::move(default_value);
  order_.push_back(name);
  flags_.emplace(std::move(name), std::move(f));
  return *this;
}

CliFlags& CliFlags::add_bool(std::string name, bool default_value, std::string help) {
  Flag f;
  f.kind = Kind::Bool;
  f.help = std::move(help);
  f.default_text = default_value ? "true" : "false";
  f.bool_value = default_value;
  order_.push_back(name);
  flags_.emplace(std::move(name), std::move(f));
  return *this;
}

void CliFlags::set_from_text(Flag& flag, std::string_view name, std::string_view text) {
  switch (flag.kind) {
    case Kind::Int: {
      std::int64_t v = 0;
      auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
      MONOHIDS_ENSURE(ec == std::errc{} && ptr == text.data() + text.size(),
                      "flag --" + std::string(name) + " expects an integer, got '" +
                          std::string(text) + "'");
      flag.int_value = v;
      break;
    }
    case Kind::Double: {
      // std::from_chars for double is available in GCC 12; use it.
      double v = 0.0;
      auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
      MONOHIDS_ENSURE(ec == std::errc{} && ptr == text.data() + text.size(),
                      "flag --" + std::string(name) + " expects a number, got '" +
                          std::string(text) + "'");
      flag.double_value = v;
      break;
    }
    case Kind::String:
      flag.string_value = std::string(text);
      break;
    case Kind::Bool:
      if (text == "true" || text == "1") {
        flag.bool_value = true;
      } else if (text == "false" || text == "0") {
        flag.bool_value = false;
      } else {
        throw InputError("flag --" + std::string(name) + " expects true/false, got '" +
                         std::string(text) + "'");
      }
      break;
  }
}

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage(argc > 0 ? argv[0] : "program");
      return false;
    }
    MONOHIDS_ENSURE(arg.substr(0, 2) == "--", "unexpected positional argument '" +
                                                  std::string(arg) + "'");
    arg.remove_prefix(2);
    std::string_view name = arg;
    std::optional<std::string_view> value;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    auto it = flags_.find(name);
    MONOHIDS_ENSURE(it != flags_.end(), "unknown flag --" + std::string(name));
    Flag& flag = it->second;
    if (!value) {
      if (flag.kind == Kind::Bool) {
        flag.bool_value = true;  // bare --flag enables a boolean
        continue;
      }
      MONOHIDS_ENSURE(i + 1 < argc, "flag --" + std::string(name) + " is missing a value");
      value = argv[++i];
    }
    set_from_text(flag, name, *value);
  }
  return true;
}

const CliFlags::Flag& CliFlags::find(std::string_view name, Kind kind) const {
  auto it = flags_.find(name);
  MONOHIDS_EXPECT(it != flags_.end(), "flag was never registered: " + std::string(name));
  MONOHIDS_EXPECT(it->second.kind == kind, "flag accessed with wrong type: " + std::string(name));
  return it->second;
}

std::int64_t CliFlags::get_int(std::string_view name) const {
  return find(name, Kind::Int).int_value;
}
double CliFlags::get_double(std::string_view name) const {
  return find(name, Kind::Double).double_value;
}
const std::string& CliFlags::get_string(std::string_view name) const {
  return find(name, Kind::String).string_value;
}
bool CliFlags::get_bool(std::string_view name) const { return find(name, Kind::Bool).bool_value; }

std::string CliFlags::usage(std::string_view program_name) const {
  std::ostringstream os;
  os << summary_ << "\n\nUsage: " << program_name << " [flags]\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " (default: " << f.default_text << ")\n      " << f.help << '\n';
  }
  return os.str();
}

}  // namespace monohids::util
