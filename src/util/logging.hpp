// Minimal leveled logger for library diagnostics.
//
// The libraries are quiet by default (level = Warn); experiment binaries
// raise the level with --verbose. Logging goes to stderr so it never
// corrupts the machine-readable experiment output on stdout.
#pragma once

#include <sstream>
#include <string_view>

namespace monohids::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Returns the current global threshold; messages below it are dropped.
[[nodiscard]] LogLevel log_level() noexcept;

/// Sets the global threshold (thread-safe, relaxed ordering is fine here).
void set_log_level(LogLevel level) noexcept;

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-sensitive).
/// Throws InputError on anything else.
[[nodiscard]] LogLevel parse_log_level(std::string_view text);

namespace detail {
void emit(LogLevel level, std::string_view component, std::string_view message);
}

/// Stream-style log statement: MONOHIDS_LOG(Info, "trace") << "users=" << n;
/// The message body is only evaluated when the level is enabled.
#define MONOHIDS_LOG(level, component)                                      \
  for (bool monohids_log_once =                                             \
           ::monohids::util::log_level() <= ::monohids::util::LogLevel::level; \
       monohids_log_once; monohids_log_once = false)                        \
  ::monohids::util::detail::LogLine(::monohids::util::LogLevel::level, (component)).stream()

namespace detail {
/// Accumulates one log line and emits it on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { emit(level_, component_, os_.str()); }

  std::ostringstream& stream() { return os_; }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace monohids::util
