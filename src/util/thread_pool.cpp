#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"

namespace monohids::util {

namespace {

/// Set for the lifetime of a worker's loop; lets parallel_for detect that
/// it is already running inside the pool.
thread_local bool t_on_worker_thread = false;

/// Pool metrics, shared by every ThreadPool instance (the shared() pool does
/// nearly all the work; standalone test pools fold into the same series).
/// Tasks here are coarse parallel_for shards, so per-task accounting —
/// a gauge move on submit/pop, two clock reads and a histogram observe per
/// task — is far off the per-index hot path.
struct PoolMetrics {
  obs::Gauge queue_depth;
  obs::Counter tasks;
  obs::Counter busy_us;
  obs::Histogram task_ms;
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m{
      obs::MetricsRegistry::global().gauge("threadpool.queue_depth"),
      obs::MetricsRegistry::global().counter("threadpool.tasks_total"),
      obs::MetricsRegistry::global().counter("threadpool.busy_micros_total"),
      obs::MetricsRegistry::global().histogram("threadpool.task_ms",
                                               obs::latency_buckets_ms()),
  };
  return m;
}

/// Sweep-level counters, registered on the first parallel_for regardless of
/// which path it takes — on single-core hosts the pool itself may never be
/// built, and the serial fallback should still be visible on a dashboard.
struct SweepMetrics {
  obs::Counter sweeps;
  obs::Counter serial;
  obs::Counter indices;
};

SweepMetrics& sweep_metrics() {
  static SweepMetrics m{
      obs::MetricsRegistry::global().counter("threadpool.parallel_for_total"),
      obs::MetricsRegistry::global().counter("threadpool.parallel_for_serial_total"),
      obs::MetricsRegistry::global().counter("threadpool.parallel_for_indices_total"),
  };
  return m;
}

unsigned parse_env_threads() noexcept {
  const char* env = std::getenv("MONOHIDS_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == nullptr || *end != '\0' || value < 1 || value > 4096) return 0;
  return static_cast<unsigned>(value);
}

}  // namespace

unsigned default_thread_count() noexcept {
  // The env var is read once: a process-wide execution knob, not something
  // experiments toggle mid-run (they pass explicit `threads` for that).
  static const unsigned env_threads = parse_env_threads();
  if (env_threads > 0) return env_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned thread_count) {
  const unsigned n = thread_count == 0 ? 1 : thread_count;
  obs::MetricsRegistry::global().gauge("threadpool.workers").add(n);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
  obs::MetricsRegistry::global().gauge("threadpool.workers").sub(thread_count());
}

void ThreadPool::submit(std::function<void()> task) {
  MONOHIDS_EXPECT(task != nullptr, "cannot submit an empty task");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    MONOHIDS_EXPECT(!stopping_, "pool is shutting down");
    queue_.push_back(std::move(task));
  }
  pool_metrics().queue_depth.add(1);
  work_available_.notify_one();
}

void ThreadPool::worker_loop() {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    PoolMetrics& metrics = pool_metrics();
    metrics.queue_depth.sub(1);
    if constexpr (obs::kEnabled) {
      const std::uint64_t start = obs::now_us();
      task();
      const std::uint64_t elapsed = obs::now_us() - start;
      obs::TraceRing::global().record("pool.task", start, elapsed);
      metrics.tasks.inc();
      metrics.busy_us.add(elapsed);
      metrics.task_ms.observe(static_cast<double>(elapsed) / 1000.0);
    } else {
      task();
    }
  }
}

ThreadPool& ThreadPool::shared() {
  // Intentionally leaked: workers must outlive every static destructor that
  // could still issue a parallel_for, and the OS reclaims threads at exit.
  static ThreadPool* pool = new ThreadPool(default_thread_count());
  return *pool;
}

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker_thread; }

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  unsigned threads) {
  MONOHIDS_EXPECT(body != nullptr, "parallel_for needs a body");
  if (count == 0) return;

  const unsigned requested = threads == 0 ? default_thread_count() : threads;
  if constexpr (obs::kEnabled) {
    SweepMetrics& m = sweep_metrics();
    m.sweeps.inc();
    m.indices.add(count);
  }
  // Serial path: also taken for nested calls so pool workers never block on
  // tasks that only other (possibly busy) workers could run.
  if (requested <= 1 || count == 1 || ThreadPool::on_worker_thread()) {
    if constexpr (obs::kEnabled) sweep_metrics().serial.inc();
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  struct SweepState {
    std::atomic<std::size_t> next{0};
    std::mutex mutex;                 // guards the three fields below
    std::condition_variable all_done;
    unsigned active = 0;
    std::exception_ptr first_error;
  };
  SweepState state;

  const auto shard = [&state, &body, count] {
    for (;;) {
      const std::size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        body(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(state.mutex);
          if (!state.first_error) state.first_error = std::current_exception();
        }
        // Park the index counter past the end so every shard stops early.
        state.next.store(count, std::memory_order_relaxed);
        break;
      }
    }
  };

  // The calling thread is one shard; the rest run on the shared pool.
  const std::size_t max_useful = count < requested ? count : requested;
  const auto helpers = static_cast<unsigned>(max_useful - 1);
  state.active = helpers;
  for (unsigned h = 0; h < helpers; ++h) {
    ThreadPool::shared().submit([&state, shard] {
      shard();
      // Decrement and notify under the lock: once `active` reaches 0 the
      // caller may destroy `state`, so a helper must not touch it after
      // releasing the mutex.
      const std::lock_guard<std::mutex> lock(state.mutex);
      if (--state.active == 0) state.all_done.notify_one();
    });
  }

  shard();

  std::unique_lock<std::mutex> lock(state.mutex);
  state.all_done.wait(lock, [&state] { return state.active == 0; });
  if (state.first_error) std::rethrow_exception(state.first_error);
}

}  // namespace monohids::util
