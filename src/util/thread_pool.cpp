#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "util/error.hpp"

namespace monohids::util {

namespace {

/// Set for the lifetime of a worker's loop; lets parallel_for detect that
/// it is already running inside the pool.
thread_local bool t_on_worker_thread = false;

unsigned parse_env_threads() noexcept {
  const char* env = std::getenv("MONOHIDS_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == nullptr || *end != '\0' || value < 1 || value > 4096) return 0;
  return static_cast<unsigned>(value);
}

}  // namespace

unsigned default_thread_count() noexcept {
  // The env var is read once: a process-wide execution knob, not something
  // experiments toggle mid-run (they pass explicit `threads` for that).
  static const unsigned env_threads = parse_env_threads();
  if (env_threads > 0) return env_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned thread_count) {
  const unsigned n = thread_count == 0 ? 1 : thread_count;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MONOHIDS_EXPECT(task != nullptr, "cannot submit an empty task");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    MONOHIDS_EXPECT(!stopping_, "pool is shutting down");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::worker_loop() {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::shared() {
  // Intentionally leaked: workers must outlive every static destructor that
  // could still issue a parallel_for, and the OS reclaims threads at exit.
  static ThreadPool* pool = new ThreadPool(default_thread_count());
  return *pool;
}

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker_thread; }

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  unsigned threads) {
  MONOHIDS_EXPECT(body != nullptr, "parallel_for needs a body");
  if (count == 0) return;

  const unsigned requested = threads == 0 ? default_thread_count() : threads;
  // Serial path: also taken for nested calls so pool workers never block on
  // tasks that only other (possibly busy) workers could run.
  if (requested <= 1 || count == 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  struct SweepState {
    std::atomic<std::size_t> next{0};
    std::mutex mutex;                 // guards the three fields below
    std::condition_variable all_done;
    unsigned active = 0;
    std::exception_ptr first_error;
  };
  SweepState state;

  const auto shard = [&state, &body, count] {
    for (;;) {
      const std::size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        body(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(state.mutex);
          if (!state.first_error) state.first_error = std::current_exception();
        }
        // Park the index counter past the end so every shard stops early.
        state.next.store(count, std::memory_order_relaxed);
        break;
      }
    }
  };

  // The calling thread is one shard; the rest run on the shared pool.
  const std::size_t max_useful = count < requested ? count : requested;
  const auto helpers = static_cast<unsigned>(max_useful - 1);
  state.active = helpers;
  for (unsigned h = 0; h < helpers; ++h) {
    ThreadPool::shared().submit([&state, shard] {
      shard();
      // Decrement and notify under the lock: once `active` reaches 0 the
      // caller may destroy `state`, so a helper must not touch it after
      // releasing the mutex.
      const std::lock_guard<std::mutex> lock(state.mutex);
      if (--state.active == 0) state.all_done.notify_one();
    });
  }

  shard();

  std::unique_lock<std::mutex> lock(state.mutex);
  state.all_done.wait(lock, [&state] { return state.active == 0; });
  if (state.first_error) std::rethrow_exception(state.first_error);
}

}  // namespace monohids::util
