#include "util/rss.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace monohids::util {

namespace {

/// Reads one "<field>: <kib> kB" line from /proc/self/status. Returns 0 on
/// non-procfs platforms or when the field is absent.
std::uint64_t proc_status_kib(const char* field) noexcept {
#if defined(__linux__)
  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) return 0;
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      unsigned long long parsed = 0;
      if (std::sscanf(line + field_len + 1, "%llu", &parsed) == 1) kib = parsed;
      break;
    }
  }
  std::fclose(status);
  return kib;
#else
  (void)field;
  return 0;
#endif
}

}  // namespace

std::uint64_t peak_rss_kib() noexcept {
  if (const std::uint64_t kib = proc_status_kib("VmHWM"); kib != 0) return kib;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;  // bytes on macOS
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // KiB on Linux/BSD
#endif
  }
#endif
  return 0;
}

std::uint64_t current_rss_kib() noexcept { return proc_status_kib("VmRSS"); }

}  // namespace monohids::util
