// Process memory accounting for benches and the fleet pipeline.
//
// The fleet mode's whole point is a bounded peak RSS, so the number must be
// observable from inside the process: benches emit it in their JSON, the
// fleet build publishes it as an obs gauge after every shard, and CI gates
// on it. Readings come from /proc/self/status on Linux with a getrusage
// fallback elsewhere; platforms with neither report 0 (callers treat 0 as
// "unknown", never as "no memory").
#pragma once

#include <cstdint>

namespace monohids::util {

/// High-water-mark resident set size of this process in KiB (VmHWM), or 0
/// when the platform exposes no reading.
[[nodiscard]] std::uint64_t peak_rss_kib() noexcept;

/// Current resident set size in KiB (VmRSS), or 0 when unavailable.
[[nodiscard]] std::uint64_t current_rss_kib() noexcept;

}  // namespace monohids::util
