#include "util/error.hpp"

#include <sstream>

namespace monohids::detail {

namespace {
std::string format(std::string_view kind, std::string_view expr, std::string_view file, int line,
                   std::string_view msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  return os.str();
}
}  // namespace

void throw_precondition(std::string_view expr, std::string_view file, int line,
                        std::string_view msg) {
  throw PreconditionError(format("precondition", expr, file, line, msg));
}

void throw_input(std::string_view expr, std::string_view file, int line, std::string_view msg) {
  throw InputError(format("input check", expr, file, line, msg));
}

}  // namespace monohids::detail
