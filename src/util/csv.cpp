#include "util/csv.hpp"

#include <charconv>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace monohids::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quote = field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    if (!first) *out_ << ',';
    first = false;
    *out_ << csv_escape(f);
  }
  *out_ << '\n';
}

std::string CsvWriter::format(double value) {
  std::ostringstream os;
  os.precision(12);
  os << value;
  return os.str();
}

std::string CsvWriter::format(std::int64_t value) { return std::to_string(value); }
std::string CsvWriter::format(std::uint64_t value) { return std::to_string(value); }

std::vector<std::string> csv_parse_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      MONOHIDS_ENSURE(current.empty(), "quote in the middle of an unquoted CSV field");
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerate trailing CR from CRLF files
    } else {
      current.push_back(c);
    }
    ++i;
  }
  MONOHIDS_ENSURE(!in_quotes, "unterminated quoted CSV field");
  fields.push_back(std::move(current));
  return fields;
}

std::vector<std::vector<std::string>> csv_parse(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    if (!line.empty() && !(line.size() == 1 && line[0] == '\r')) {
      rows.push_back(csv_parse_line(line));
    }
    start = end + 1;
  }
  return rows;
}

}  // namespace monohids::util
