// Simulation time model.
//
// Traces span several weeks; packet timestamps are microseconds since the
// start of the trace (t = 0 is 00:00 Monday of week 0, matching the paper's
// Q1-2007 collection being analyzed in whole weeks). Helpers convert between
// timestamps, 5/15-minute feature bins, days, and weeks.
#pragma once

#include <cstdint>

namespace monohids::util {

/// Microseconds since trace start.
using Timestamp = std::uint64_t;

/// A duration in microseconds.
using Duration = std::uint64_t;

inline constexpr Duration kMicrosPerSecond = 1'000'000ULL;
inline constexpr Duration kMicrosPerMinute = 60 * kMicrosPerSecond;
inline constexpr Duration kMicrosPerHour = 60 * kMicrosPerMinute;
inline constexpr Duration kMicrosPerDay = 24 * kMicrosPerHour;
inline constexpr Duration kMicrosPerWeek = 7 * kMicrosPerDay;

[[nodiscard]] constexpr Timestamp from_seconds(double seconds) noexcept {
  return static_cast<Timestamp>(seconds * static_cast<double>(kMicrosPerSecond));
}

[[nodiscard]] constexpr double to_seconds(Timestamp t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMicrosPerSecond);
}

/// Index of the week containing `t` (week 0 starts at t = 0).
[[nodiscard]] constexpr std::uint32_t week_of(Timestamp t) noexcept {
  return static_cast<std::uint32_t>(t / kMicrosPerWeek);
}

/// Day-of-week for `t`: 0 = Monday … 6 = Sunday.
[[nodiscard]] constexpr std::uint32_t day_of_week(Timestamp t) noexcept {
  return static_cast<std::uint32_t>((t / kMicrosPerDay) % 7);
}

/// True for Saturday/Sunday.
[[nodiscard]] constexpr bool is_weekend(Timestamp t) noexcept { return day_of_week(t) >= 5; }

/// Hour-of-day in [0, 24) as a real number (e.g. 13.5 = 13:30).
[[nodiscard]] constexpr double hour_of_day(Timestamp t) noexcept {
  return static_cast<double>(t % kMicrosPerDay) / static_cast<double>(kMicrosPerHour);
}

/// Fixed-width time binning used by the feature pipeline.
class BinGrid {
 public:
  /// `width` must be positive.
  explicit constexpr BinGrid(Duration width) noexcept : width_(width) {}

  [[nodiscard]] constexpr Duration width() const noexcept { return width_; }

  /// Index of the bin containing `t`.
  [[nodiscard]] constexpr std::uint64_t bin_of(Timestamp t) const noexcept { return t / width_; }

  /// Start timestamp of bin `index`.
  [[nodiscard]] constexpr Timestamp bin_start(std::uint64_t index) const noexcept {
    return index * width_;
  }

  /// Number of whole-or-partial bins covering [0, horizon).
  [[nodiscard]] constexpr std::uint64_t bin_count(Duration horizon) const noexcept {
    return (horizon + width_ - 1) / width_;
  }

  /// Grid with `minutes`-wide bins (the paper uses 5 and 15 minutes).
  [[nodiscard]] static constexpr BinGrid minutes(std::uint64_t m) noexcept {
    return BinGrid(m * kMicrosPerMinute);
  }

 private:
  Duration width_;
};

}  // namespace monohids::util
