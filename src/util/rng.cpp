#include "util/rng.hpp"

namespace monohids::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a 64-bit over a byte string; used only for label mixing.
constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm();
  // A state of all zeros is invalid for xoshiro; SplitMix64 cannot produce
  // four consecutive zeros from any seed, so no further check is needed.
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> s{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) s[i] ^= state_[i];
      }
      (void)operator()();
    }
  }
  state_ = s;
}

std::uint64_t derive_seed(std::uint64_t master, std::string_view label,
                          std::uint64_t index) noexcept {
  SplitMix64 sm(master ^ fnv1a(label));
  std::uint64_t h = sm();
  SplitMix64 sm2(h + 0x9e3779b97f4a7c15ULL * (index + 1));
  return sm2();
}

}  // namespace monohids::util
