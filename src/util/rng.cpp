#include "util/rng.hpp"

namespace monohids::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a 64-bit over a byte string; used only for label mixing.
constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm();
  // A state of all zeros is invalid for xoshiro; SplitMix64 cannot produce
  // four consecutive zeros from any seed, so no further check is needed.
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                            0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> s{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) s[i] ^= state_[i];
      }
      (void)operator()();
    }
  }
  state_ = s;
}

namespace {

// Philox4x32 round constants (Salmon et al. 2011): the two multipliers and
// the Weyl key increments applied between rounds.
constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kPhiloxW0 = 0x9E3779B9u;
constexpr std::uint32_t kPhiloxW1 = 0xBB67AE85u;

struct PhiloxState {
  std::uint32_t c0, c1, c2, c3;
};

inline PhiloxState philox_round(PhiloxState s, std::uint32_t k0,
                                std::uint32_t k1) noexcept {
  const std::uint64_t p0 = std::uint64_t{kPhiloxM0} * s.c0;
  const std::uint64_t p1 = std::uint64_t{kPhiloxM1} * s.c2;
  return {static_cast<std::uint32_t>(p1 >> 32) ^ s.c1 ^ k0,
          static_cast<std::uint32_t>(p1),
          static_cast<std::uint32_t>(p0 >> 32) ^ s.c3 ^ k1,
          static_cast<std::uint32_t>(p0)};
}

}  // namespace

std::array<std::uint32_t, 4> Philox4x32::block(std::array<std::uint32_t, 4> counter,
                                               std::uint32_t k0,
                                               std::uint32_t k1) noexcept {
  PhiloxState s{counter[0], counter[1], counter[2], counter[3]};
  for (int r = 0; r < 10; ++r) {
    s = philox_round(s, k0, k1);
    k0 += kPhiloxW0;
    k1 += kPhiloxW1;
  }
  return {s.c0, s.c1, s.c2, s.c3};
}

void Philox4x32::fill_blocks(std::uint64_t key, std::uint64_t stream,
                             std::uint64_t first_block, std::uint32_t* out,
                             std::size_t blocks) noexcept {
  const auto k0_init = static_cast<std::uint32_t>(key);
  const auto k1_init = static_cast<std::uint32_t>(key >> 32);
  const auto s_lo = static_cast<std::uint32_t>(stream);
  const auto s_hi = static_cast<std::uint32_t>(stream >> 32);

  std::size_t b = 0;
  // Four independent blocks in flight: each round is two 32x32 multiplies
  // on a short dependency chain, so interleaving four blocks keeps the
  // multiplier pipeline full (the same schedule the AVX2 kernel vectorizes).
  for (; b + 4 <= blocks; b += 4) {
    PhiloxState s[4];
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t blk = first_block + b + static_cast<std::uint64_t>(i);
      s[i] = {static_cast<std::uint32_t>(blk), static_cast<std::uint32_t>(blk >> 32),
              s_lo, s_hi};
    }
    std::uint32_t k0 = k0_init, k1 = k1_init;
    for (int r = 0; r < 10; ++r) {
      for (auto& lane : s) lane = philox_round(lane, k0, k1);
      k0 += kPhiloxW0;
      k1 += kPhiloxW1;
    }
    for (int i = 0; i < 4; ++i) {
      out[(b + static_cast<std::size_t>(i)) * 4 + 0] = s[i].c0;
      out[(b + static_cast<std::size_t>(i)) * 4 + 1] = s[i].c1;
      out[(b + static_cast<std::size_t>(i)) * 4 + 2] = s[i].c2;
      out[(b + static_cast<std::size_t>(i)) * 4 + 3] = s[i].c3;
    }
  }
  for (; b < blocks; ++b) {
    const std::uint64_t blk = first_block + b;
    const auto words = block({static_cast<std::uint32_t>(blk),
                              static_cast<std::uint32_t>(blk >> 32), s_lo, s_hi},
                             k0_init, k1_init);
    out[b * 4 + 0] = words[0];
    out[b * 4 + 1] = words[1];
    out[b * 4 + 2] = words[2];
    out[b * 4 + 3] = words[3];
  }
}

std::uint64_t derive_seed(std::uint64_t master, std::string_view label,
                          std::uint64_t index) noexcept {
  SplitMix64 sm(master ^ fnv1a(label));
  std::uint64_t h = sm();
  SplitMix64 sm2(h + 0x9e3779b97f4a7c15ULL * (index + 1));
  return sm2();
}

}  // namespace monohids::util
