// Feature extraction from flow events and packets.
//
// Mirrors the paper's Bro processing: only activity *initiated by the
// monitored host* ("per source basis") is counted. Five features count
// connection Start events by service class; num-TCP-SYN counts raw outbound
// SYN packets (so SYN floods with retransmissions register at full
// strength); num-distinct-connections counts distinct destination IPs
// contacted within each bin.
#pragma once

#include <unordered_set>

#include "features/time_series.hpp"
#include "net/classify.hpp"
#include "net/flow_table.hpp"

namespace monohids::features {

class FeatureExtractor {
 public:
  /// Builds an extractor producing six series on `grid` covering [0, horizon).
  FeatureExtractor(util::BinGrid grid, util::Duration horizon);

  /// Observes a packet (for raw-SYN counting). Must be called in time order,
  /// interleaved with on_flow_event as the pipeline advances.
  void on_packet(const net::PacketRecord& packet, net::Ipv4Address monitored);

  /// Observes a flow event from the flow table.
  void on_flow_event(const net::FlowEvent& event);

  /// Finalizes the in-progress distinct-destination bin. Call once, after
  /// the last packet.
  void finish();

  /// The extracted matrix (valid after finish()).
  [[nodiscard]] const FeatureMatrix& matrix() const noexcept { return matrix_; }

 private:
  void roll_distinct_bin(std::uint64_t new_bin);

  FeatureMatrix matrix_;
  util::BinGrid grid_;
  std::uint64_t current_distinct_bin_ = 0;
  std::unordered_set<net::Ipv4Address> distinct_dsts_;
  bool finished_ = false;
};

}  // namespace monohids::features
