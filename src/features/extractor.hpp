// Feature extraction from flow events and packets.
//
// Mirrors the paper's Bro processing: only activity *initiated by the
// monitored host* ("per source basis") is counted. Five features count
// connection Start events by service class; num-TCP-SYN counts raw outbound
// SYN packets (so SYN floods with retransmissions register at full
// strength); num-distinct-connections counts distinct destination IPs
// contacted within each bin.
//
// The per-event observers are defined inline: they sit on the streaming
// ingest hot path (once per packet / once per connection), so the grid
// division is cached per bin and the distinct-destination set is a flat
// open-addressing table rather than a node-based std::unordered_set.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "features/time_series.hpp"
#include "net/classify.hpp"
#include "net/flow_table.hpp"

namespace monohids::features {

/// Flat open-addressing hash set of IPv4 addresses, sized for the per-bin
/// distinct-destination count. Linear probing over a power-of-two array of
/// value+1 markers (0 = empty slot), Fibonacci-multiplied start slot: an
/// insert is a few cache-resident loads, where std::unordered_set pays a
/// prime modulo plus a node allocation per new element.
class DistinctIpSet {
 public:
  DistinctIpSet() : slots_(kMinSlots, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void clear() noexcept {
    if (size_ != 0) std::fill(slots_.begin(), slots_.end(), 0);
    size_ = 0;
  }

  void insert(net::Ipv4Address ip) {
    const std::uint64_t marker = std::uint64_t{ip.value()} + 1;  // 0 marks empty
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>((marker * 0x9e3779b97f4a7c15ULL) >> 32) & mask;
    while (slots_[i] != 0) {
      if (slots_[i] == marker) return;
      i = (i + 1) & mask;
    }
    slots_[i] = marker;
    ++size_;
    if (size_ * 4 > slots_.size() * 3) grow();
  }

 private:
  static constexpr std::size_t kMinSlots = 64;

  void grow();

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
};

class FeatureExtractor {
 public:
  /// Builds an extractor producing six series on `grid` covering [0, horizon).
  FeatureExtractor(util::BinGrid grid, util::Duration horizon);

  /// Observes a packet (for raw-SYN counting). Must be called in time order,
  /// interleaved with on_flow_event as the pipeline advances.
  void on_packet(const net::PacketRecord& packet, net::Ipv4Address monitored) {
    MONOHIDS_EXPECT(!finished_, "extractor already finished");
    if (packet.tuple.src_ip != monitored) return;  // per-source: outbound only
    if (packet.tuple.protocol == net::Protocol::Tcp &&
        has_flag(packet.tcp_flags, net::TcpFlags::Syn) &&
        !has_flag(packet.tcp_flags, net::TcpFlags::Ack)) {
      matrix_.of(FeatureKind::TcpSyn).add_bin(bin_of_cached(packet.timestamp));
    }
  }

  /// Observes a flow event from the flow table.
  void on_flow_event(const net::FlowEvent& event) {
    MONOHIDS_EXPECT(!finished_, "extractor already finished");
    if (event.kind != net::FlowEventKind::Start) return;
    if (!event.initiated_by_monitored_host) return;

    const net::Service service = net::classify(event.tuple);
    const std::uint64_t bin = bin_of_cached(event.timestamp);

    // Service-specific connection counters.
    if (service == net::Service::Dns) {
      matrix_.of(FeatureKind::DnsConnections).add_bin(bin);
    }
    if (service == net::Service::Http) {
      matrix_.of(FeatureKind::HttpConnections).add_bin(bin);
    }
    if (event.tuple.protocol == net::Protocol::Tcp) {
      matrix_.of(FeatureKind::TcpConnections).add_bin(bin);
    } else if (event.tuple.protocol == net::Protocol::Udp) {
      matrix_.of(FeatureKind::UdpConnections).add_bin(bin);
    }

    // Distinct destinations per bin.
    if (bin != current_distinct_bin_) roll_distinct_bin(bin);
    distinct_dsts_.insert(event.tuple.dst_ip);
  }

  /// Finalizes the in-progress distinct-destination bin. Call once, after
  /// the last packet.
  void finish();

  /// Finalizes every bin strictly below `bin` without ending the stream: if
  /// the in-progress distinct-destination bin lies below `bin`, its count is
  /// written out and the set cleared — exactly the write the next Start
  /// event in a bin >= `bin` would have performed, so sealing early is
  /// bit-identical to letting the stream roll the bin itself. Callers must
  /// only seal up to a boundary no future event can precede (the live
  /// daemon seals through the bin of the last ingested packet).
  void seal_through(std::uint64_t bin) {
    MONOHIDS_EXPECT(!finished_, "extractor already finished");
    if (bin > current_distinct_bin_) roll_distinct_bin(bin);
  }

  /// The extracted matrix. Final after finish(); before that, every bin
  /// below the last seal_through() boundary is final and later bins are
  /// still accumulating (the live-monitoring peek).
  [[nodiscard]] const FeatureMatrix& matrix() const noexcept { return matrix_; }

 private:
  void roll_distinct_bin(std::uint64_t new_bin);

  /// grid().bin_of(t) with the current bin's bounds cached: the 64-bit
  /// division only runs when `t` leaves the cached bin, which for the
  /// pipeline's time-ordered streams means once per bin, not once per
  /// event. Pure — any out-of-range `t` simply recomputes.
  [[nodiscard]] std::uint64_t bin_of_cached(util::Timestamp t) noexcept {
    if (t < bin_lo_ || t >= bin_hi_) [[unlikely]] {
      cached_bin_ = grid_.bin_of(t);
      bin_lo_ = cached_bin_ * static_cast<std::uint64_t>(grid_.width());
      bin_hi_ = bin_lo_ + static_cast<std::uint64_t>(grid_.width());
    }
    return cached_bin_;
  }

  FeatureMatrix matrix_;
  util::BinGrid grid_;
  std::uint64_t cached_bin_ = 0;
  util::Timestamp bin_lo_ = 0;
  util::Timestamp bin_hi_ = 0;  ///< cache covers [bin_lo_, bin_hi_)
  std::uint64_t current_distinct_bin_ = 0;
  DistinctIpSet distinct_dsts_;
  bool finished_ = false;
};

}  // namespace monohids::features
