#include "features/extractor.hpp"

#include "util/error.hpp"

namespace monohids::features {

void DistinctIpSet::grow() {
  std::vector<std::uint64_t> old;
  old.swap(slots_);
  slots_.assign(old.size() * 2, 0);
  const std::size_t mask = slots_.size() - 1;
  for (const std::uint64_t marker : old) {
    if (marker == 0) continue;
    std::size_t i = static_cast<std::size_t>((marker * 0x9e3779b97f4a7c15ULL) >> 32) & mask;
    while (slots_[i] != 0) i = (i + 1) & mask;
    slots_[i] = marker;
  }
}

FeatureExtractor::FeatureExtractor(util::BinGrid grid, util::Duration horizon) : grid_(grid) {
  for (auto& s : matrix_.series) s = BinnedSeries(grid, horizon);
}

void FeatureExtractor::roll_distinct_bin(std::uint64_t new_bin) {
  MONOHIDS_EXPECT(new_bin > current_distinct_bin_, "flow events must be time-ordered");
  auto& series = matrix_.of(FeatureKind::DistinctConnections);
  if (!distinct_dsts_.empty() && current_distinct_bin_ < series.bin_count()) {
    series.set(current_distinct_bin_, static_cast<double>(distinct_dsts_.size()));
  }
  distinct_dsts_.clear();
  current_distinct_bin_ = new_bin;
}

void FeatureExtractor::finish() {
  if (finished_) return;
  auto& series = matrix_.of(FeatureKind::DistinctConnections);
  if (!distinct_dsts_.empty() && current_distinct_bin_ < series.bin_count()) {
    series.set(current_distinct_bin_, static_cast<double>(distinct_dsts_.size()));
  }
  distinct_dsts_.clear();
  finished_ = true;
}

}  // namespace monohids::features
