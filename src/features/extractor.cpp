#include "features/extractor.hpp"

#include "util/error.hpp"

namespace monohids::features {

FeatureExtractor::FeatureExtractor(util::BinGrid grid, util::Duration horizon) : grid_(grid) {
  for (auto& s : matrix_.series) s = BinnedSeries(grid, horizon);
}

void FeatureExtractor::on_packet(const net::PacketRecord& packet, net::Ipv4Address monitored) {
  MONOHIDS_EXPECT(!finished_, "extractor already finished");
  if (packet.tuple.src_ip != monitored) return;  // per-source: outbound only
  if (packet.tuple.protocol == net::Protocol::Tcp &&
      has_flag(packet.tcp_flags, net::TcpFlags::Syn) &&
      !has_flag(packet.tcp_flags, net::TcpFlags::Ack)) {
    matrix_.of(FeatureKind::TcpSyn).add_at(packet.timestamp);
  }
}

void FeatureExtractor::on_flow_event(const net::FlowEvent& event) {
  MONOHIDS_EXPECT(!finished_, "extractor already finished");
  if (event.kind != net::FlowEventKind::Start) return;
  if (!event.initiated_by_monitored_host) return;

  const net::Service service = net::classify(event.tuple);
  const util::Timestamp t = event.timestamp;

  // Service-specific connection counters.
  if (service == net::Service::Dns) {
    matrix_.of(FeatureKind::DnsConnections).add_at(t);
  }
  if (service == net::Service::Http) {
    matrix_.of(FeatureKind::HttpConnections).add_at(t);
  }
  if (event.tuple.protocol == net::Protocol::Tcp) {
    matrix_.of(FeatureKind::TcpConnections).add_at(t);
  } else if (event.tuple.protocol == net::Protocol::Udp) {
    matrix_.of(FeatureKind::UdpConnections).add_at(t);
  }

  // Distinct destinations per bin.
  const std::uint64_t bin = grid_.bin_of(t);
  if (bin != current_distinct_bin_) roll_distinct_bin(bin);
  distinct_dsts_.insert(event.tuple.dst_ip);
}

void FeatureExtractor::roll_distinct_bin(std::uint64_t new_bin) {
  MONOHIDS_EXPECT(new_bin > current_distinct_bin_, "flow events must be time-ordered");
  auto& series = matrix_.of(FeatureKind::DistinctConnections);
  if (!distinct_dsts_.empty() && current_distinct_bin_ < series.bin_count()) {
    series.set(current_distinct_bin_, static_cast<double>(distinct_dsts_.size()));
  }
  distinct_dsts_.clear();
  current_distinct_bin_ = new_bin;
}

void FeatureExtractor::finish() {
  if (finished_) return;
  auto& series = matrix_.of(FeatureKind::DistinctConnections);
  if (!distinct_dsts_.empty() && current_distinct_bin_ < series.bin_count()) {
    series.set(current_distinct_bin_, static_cast<double>(distinct_dsts_.size()));
  }
  distinct_dsts_.clear();
  finished_ = true;
}

}  // namespace monohids::features
