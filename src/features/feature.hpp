// The behavioral features of Table 1.
//
// Six additive traffic features, each counted per time bin on a per-source
// (monitored-host-initiated) basis:
//
//   Feature                   Anomaly targeted        Product (per paper)
//   num-DNS-connections       Botnet C&C              Damballa
//   num-TCP-connections       scans, DDoS             Cisco CSA
//   num-TCP-SYN               scans, DDoS             Bro, CSA
//   num-HTTP-connections      Clickfraud, DDoS        Bro, BlackIce
//   num-distinct-connections  scans                   Bro
//   num-UDP-connections       scans, DDoS             Cisco CSA
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace monohids::features {

enum class FeatureKind : std::uint8_t {
  DnsConnections = 0,
  TcpConnections,
  TcpSyn,
  HttpConnections,
  DistinctConnections,
  UdpConnections,
};

inline constexpr std::size_t kFeatureCount = 6;

inline constexpr std::array<FeatureKind, kFeatureCount> kAllFeatures = {
    FeatureKind::DnsConnections,     FeatureKind::TcpConnections,
    FeatureKind::TcpSyn,             FeatureKind::HttpConnections,
    FeatureKind::DistinctConnections, FeatureKind::UdpConnections,
};

[[nodiscard]] constexpr std::size_t index_of(FeatureKind f) noexcept {
  return static_cast<std::size_t>(f);
}

/// Canonical name, e.g. "num-TCP-connections".
[[nodiscard]] std::string_view name_of(FeatureKind f) noexcept;

/// The anomaly class the feature targets (Table 1).
[[nodiscard]] std::string_view anomaly_of(FeatureKind f) noexcept;

/// Commercial products the paper lists for the feature (Table 1).
[[nodiscard]] std::string_view products_of(FeatureKind f) noexcept;

/// Parses a canonical name back to the kind; throws InputError if unknown.
[[nodiscard]] FeatureKind parse_feature(std::string_view name);

}  // namespace monohids::features
