#include "features/time_series.hpp"

#include "util/error.hpp"

namespace monohids::features {

BinnedSeries::BinnedSeries(util::BinGrid grid, util::Duration horizon) : grid_(grid) {
  MONOHIDS_EXPECT(grid.width() > 0, "bin width must be positive");
  MONOHIDS_EXPECT(horizon > 0, "series horizon must be positive");
  counts_.assign(grid.bin_count(horizon), 0.0);
}

double BinnedSeries::at(std::size_t bin) const {
  MONOHIDS_EXPECT(bin < counts_.size(), "bin index out of range");
  return counts_[bin];
}

void BinnedSeries::set(std::size_t bin, double value) {
  MONOHIDS_EXPECT(bin < counts_.size(), "bin index out of range");
  counts_[bin] = value;
}

std::span<const double> BinnedSeries::week_slice(std::uint32_t week) const {
  const std::uint64_t bins_per_week = util::kMicrosPerWeek / grid_.width();
  const std::uint64_t first = static_cast<std::uint64_t>(week) * bins_per_week;
  if (first >= counts_.size()) return {};
  const std::uint64_t last = std::min<std::uint64_t>(first + bins_per_week, counts_.size());
  return std::span<const double>(counts_).subspan(first, last - first);
}

std::uint32_t BinnedSeries::week_count() const noexcept {
  return static_cast<std::uint32_t>(horizon() / util::kMicrosPerWeek);
}

BinnedSeries BinnedSeries::operator+(const BinnedSeries& other) const {
  MONOHIDS_EXPECT(grid_.width() == other.grid_.width() && counts_.size() == other.counts_.size(),
                  "series shapes differ");
  BinnedSeries out = *this;
  for (std::size_t i = 0; i < counts_.size(); ++i) out.counts_[i] += other.counts_[i];
  return out;
}

}  // namespace monohids::features
