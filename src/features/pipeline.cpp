#include "features/pipeline.hpp"

namespace monohids::features {

PipelineResult extract_features(net::Ipv4Address monitored,
                                std::span<const net::PacketRecord> packets,
                                const PipelineConfig& config) {
  net::FlowTable table(monitored, config.flow_config);
  FeatureExtractor extractor(config.grid, config.horizon);

  for (const net::PacketRecord& packet : packets) {
    extractor.on_packet(packet, monitored);
    table.process(packet);
    for (const net::FlowEvent& event : table.drain_events()) {
      extractor.on_flow_event(event);
    }
  }
  table.flush(config.horizon > 0 ? config.horizon - 1 : 0);
  for (const net::FlowEvent& event : table.drain_events()) {
    extractor.on_flow_event(event);
  }
  extractor.finish();

  return PipelineResult{extractor.matrix(), table.stats()};
}

}  // namespace monohids::features
