#include "features/pipeline.hpp"

#include <algorithm>

#include "net/flow_table_ref.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"

namespace monohids::features {

namespace {

/// Ingest metrics, published per batch (not per packet): one counter add
/// per series per on_batch call plus two clock reads for the latency
/// histogram, amortized over up to kDefaultIngestBatch packets.
struct IngestMetrics {
  obs::Counter packets;
  obs::Counter batches;
  obs::Counter flow_starts;
  obs::Counter sessions;
  obs::Histogram batch_ms;
};

IngestMetrics& ingest_metrics() {
  auto& registry = obs::MetricsRegistry::global();
  static IngestMetrics m{
      registry.counter("ingest.packets_total"),
      registry.counter("ingest.batches_total"),
      registry.counter("ingest.flow_starts_total"),
      registry.counter("ingest.sessions_finished_total"),
      registry.histogram("ingest.batch_ms", obs::latency_buckets_ms()),
  };
  return m;
}

}  // namespace

BatchingAdapter::BatchingAdapter(PacketSink& sink, std::size_t max_batch)
    : sink_(&sink), max_batch_(max_batch) {
  MONOHIDS_EXPECT(max_batch > 0, "ingest batch size must be positive");
  buffer_.reserve(max_batch);
}

void BatchingAdapter::flush() {
  if (buffer_.empty()) return;
  sink_->on_batch(buffer_);
  buffer_.clear();
}

std::uint64_t BatchingAdapter::finish() {
  flush();
  return count_;
}

IngestSession::IngestSession(net::Ipv4Address monitored, const PipelineConfig& config)
    : monitored_(monitored),
      grid_(config.grid),
      horizon_(config.horizon),
      table_(monitored, config.flow_config),
      extractor_(config.grid, config.horizon) {}

std::uint64_t IngestSession::completed_bins() const noexcept {
  const std::uint64_t bin_count = grid_.bin_count(horizon_);
  return std::min<std::uint64_t>(grid_.bin_of(last_seen_), bin_count);
}

std::uint64_t IngestSession::seal_completed() {
  MONOHIDS_EXPECT(!finished_, "IngestSession already finished");
  const std::uint64_t completed = completed_bins();
  extractor_.seal_through(completed);
  return completed;
}

void IngestSession::on_batch(std::span<const net::PacketRecord> batch) {
  MONOHIDS_EXPECT(!finished_, "IngestSession already finished");
  const obs::ScopedTimer span("ingest.batch", ingest_metrics().batch_ms);
  std::uint64_t flow_starts = 0;
  // The flow table's batch loop runs uninterrupted (its hot path inlines in
  // one translation unit), then the chunk's flow events and SYN packets feed
  // the extractor in two passes. Splitting the streams is exact: on_packet
  // only touches the TcpSyn series and on_flow_event only the other five, so
  // no single series sees its updates reordered. Chunking (rather than one
  // pass over the whole batch) keeps the pending-event buffer bounded even
  // when a caller hands us an entire trace in one span.
  constexpr std::size_t kChunk = 4096;
  for (std::size_t at = 0; at < batch.size(); at += kChunk) {
    const auto chunk = batch.subspan(at, std::min(kChunk, batch.size() - at));
    table_.process_batch(chunk);
    for (const net::FlowEvent& event : table_.pending_events()) {
      // Same filter the extractor applies first thing; hoisting it here
      // skips the call for End events and inbound-initiated flows.
      if (event.kind == net::FlowEventKind::Start && event.initiated_by_monitored_host) {
        if constexpr (obs::kEnabled) ++flow_starts;
        extractor_.on_flow_event(event);
      }
    }
    table_.clear_events();
    for (const net::PacketRecord& packet : chunk) {
      // Pre-filter: only outbound TCP SYNs can contribute to a feature (the
      // extractor applies the same test, so skipped calls were no-ops).
      if (packet.tuple.src_ip == monitored_ &&
          packet.tuple.protocol == net::Protocol::Tcp &&
          has_flag(packet.tcp_flags, net::TcpFlags::Syn)) {
        extractor_.on_packet(packet, monitored_);
      }
    }
  }
  if (!batch.empty()) last_seen_ = batch.back().timestamp;
  if constexpr (obs::kEnabled) {
    IngestMetrics& m = ingest_metrics();
    m.packets.add(batch.size());
    m.batches.inc();
    m.flow_starts.add(flow_starts);
  }
}

void IngestSession::push(const net::PacketRecord& packet) {
  on_batch(std::span<const net::PacketRecord>(&packet, 1));
}

PipelineResult IngestSession::finish() {
  MONOHIDS_EXPECT(!finished_, "IngestSession already finished");
  // End-of-trace flush at the later of the horizon and the last observed
  // timestamp: flushing at horizon - 1 rejected traces whose final packet
  // landed in the last bin's closing microsecond (or past the horizon), and
  // mislabeled flows still active there as if time had run out early.
  table_.flush(std::max<util::Timestamp>(horizon_, last_seen_));
  for (const net::FlowEvent& event : table_.pending_events()) {
    extractor_.on_flow_event(event);
  }
  table_.clear_events();
  extractor_.finish();
  finished_ = true;
  ingest_metrics().sessions.inc();
  return PipelineResult{extractor_.matrix(), table_.stats()};
}

PipelineResult extract_features(net::Ipv4Address monitored,
                                std::span<const net::PacketRecord> packets,
                                const PipelineConfig& config) {
  IngestSession session(monitored, config);
  session.on_batch(packets);
  return session.finish();
}

PipelineResult extract_features_reference(net::Ipv4Address monitored,
                                          std::span<const net::PacketRecord> packets,
                                          const PipelineConfig& config) {
  net::ReferenceFlowTable table(monitored, config.flow_config);
  FeatureExtractor extractor(config.grid, config.horizon);

  for (const net::PacketRecord& packet : packets) {
    extractor.on_packet(packet, monitored);
    table.process(packet);
    for (const net::FlowEvent& event : table.drain_events()) {
      extractor.on_flow_event(event);
    }
  }
  const util::Timestamp last_seen = packets.empty() ? 0 : packets.back().timestamp;
  table.flush(std::max<util::Timestamp>(config.horizon, last_seen));
  for (const net::FlowEvent& event : table.drain_events()) {
    extractor.on_flow_event(event);
  }
  extractor.finish();

  return PipelineResult{extractor.matrix(), table.stats()};
}

}  // namespace monohids::features
