#include "features/pipeline.hpp"

#include <algorithm>

namespace monohids::features {

PipelineResult extract_features(net::Ipv4Address monitored,
                                std::span<const net::PacketRecord> packets,
                                const PipelineConfig& config) {
  net::FlowTable table(monitored, config.flow_config);
  FeatureExtractor extractor(config.grid, config.horizon);

  for (const net::PacketRecord& packet : packets) {
    extractor.on_packet(packet, monitored);
    table.process(packet);
    for (const net::FlowEvent& event : table.drain_events()) {
      extractor.on_flow_event(event);
    }
  }
  // End-of-trace flush at the later of the horizon and the last observed
  // timestamp: flushing at horizon - 1 rejected traces whose final packet
  // landed in the last bin's closing microsecond (or past the horizon), and
  // mislabeled flows still active there as if time had run out early.
  const util::Timestamp last_seen = packets.empty() ? 0 : packets.back().timestamp;
  table.flush(std::max<util::Timestamp>(config.horizon, last_seen));
  for (const net::FlowEvent& event : table.drain_events()) {
    extractor.on_flow_event(event);
  }
  extractor.finish();

  return PipelineResult{extractor.matrix(), table.stats()};
}

}  // namespace monohids::features
