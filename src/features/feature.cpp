#include "features/feature.hpp"

#include <string>

#include "util/error.hpp"

namespace monohids::features {

std::string_view name_of(FeatureKind f) noexcept {
  switch (f) {
    case FeatureKind::DnsConnections: return "num-DNS-connections";
    case FeatureKind::TcpConnections: return "num-TCP-connections";
    case FeatureKind::TcpSyn: return "num-TCP-SYN";
    case FeatureKind::HttpConnections: return "num-HTTP-connections";
    case FeatureKind::DistinctConnections: return "num-distinct-connections";
    case FeatureKind::UdpConnections: return "num-UDP-connections";
  }
  return "unknown";
}

std::string_view anomaly_of(FeatureKind f) noexcept {
  switch (f) {
    case FeatureKind::DnsConnections: return "Botnet C&C";
    case FeatureKind::TcpConnections: return "scans, DDoS";
    case FeatureKind::TcpSyn: return "scans, DDoS";
    case FeatureKind::HttpConnections: return "Clickfraud, DDoS";
    case FeatureKind::DistinctConnections: return "scans";
    case FeatureKind::UdpConnections: return "scans, DDoS";
  }
  return "unknown";
}

std::string_view products_of(FeatureKind f) noexcept {
  switch (f) {
    case FeatureKind::DnsConnections: return "Damballa";
    case FeatureKind::TcpConnections: return "Cisco CSA";
    case FeatureKind::TcpSyn: return "BRO, CSA";
    case FeatureKind::HttpConnections: return "BRO, BlackIce";
    case FeatureKind::DistinctConnections: return "BRO";
    case FeatureKind::UdpConnections: return "Cisco CSA";
  }
  return "unknown";
}

FeatureKind parse_feature(std::string_view name) {
  for (FeatureKind f : kAllFeatures) {
    if (name_of(f) == name) return f;
  }
  throw InputError("unknown feature name: " + std::string(name));
}

}  // namespace monohids::features
