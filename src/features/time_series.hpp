// Binned feature time series.
//
// A BinnedSeries is a per-host count of one feature over fixed-width time
// bins — each bin value is one sample of the host's distribution P(g_i^j).
// Week slicing supports the paper's train-on-week-k / test-on-week-k+1
// methodology; a FeatureMatrix bundles the six series of one host.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "features/feature.hpp"
#include "util/error.hpp"
#include "util/sim_time.hpp"

namespace monohids::features {

class BinnedSeries {
 public:
  BinnedSeries() : grid_(util::BinGrid::minutes(15)) {}

  /// Zero-initialized series covering [0, horizon) with the given grid.
  BinnedSeries(util::BinGrid grid, util::Duration horizon);

  [[nodiscard]] util::BinGrid grid() const noexcept { return grid_; }
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] util::Duration horizon() const noexcept {
    return counts_.size() * grid_.width();
  }

  /// Adds `amount` to the bin containing `t`. `t` must be inside the horizon.
  /// Defined inline: this is the feature pipeline's per-event hot path.
  void add_at(util::Timestamp t, double amount = 1.0) {
    const std::uint64_t bin = grid_.bin_of(t);
    MONOHIDS_EXPECT(bin < counts_.size(), "timestamp beyond series horizon");
    counts_[bin] += amount;
  }

  /// Adds `amount` to bin `bin` (a grid().bin_of() result). Hot-path variant
  /// for callers that already derived the bin and add to several series.
  void add_bin(std::uint64_t bin, double amount = 1.0) {
    MONOHIDS_EXPECT(bin < counts_.size(), "timestamp beyond series horizon");
    counts_[bin] += amount;
  }

  /// Direct bin access.
  [[nodiscard]] double at(std::size_t bin) const;
  void set(std::size_t bin, double value);

  [[nodiscard]] std::span<const double> values() const noexcept { return counts_; }

  /// Mutable bin storage for bulk writers (the batched trace generator
  /// widens SoA staging buffers straight into it). Same layout as values().
  [[nodiscard]] std::span<double> values_mut() noexcept { return counts_; }

  /// Bins overlapping week `w` (empty if the week is past the horizon).
  [[nodiscard]] std::span<const double> week_slice(std::uint32_t week) const;

  /// Number of whole weeks covered by the horizon.
  [[nodiscard]] std::uint32_t week_count() const noexcept;

  /// Element-wise sum with another series on the same grid/horizon — this is
  /// the paper's additive attack overlay: observed = g + b.
  [[nodiscard]] BinnedSeries operator+(const BinnedSeries& other) const;

 private:
  util::BinGrid grid_;
  std::vector<double> counts_;
};

/// The six feature series of one monitored host.
struct FeatureMatrix {
  std::array<BinnedSeries, kFeatureCount> series;

  [[nodiscard]] const BinnedSeries& of(FeatureKind f) const { return series[index_of(f)]; }
  [[nodiscard]] BinnedSeries& of(FeatureKind f) { return series[index_of(f)]; }
};

}  // namespace monohids::features
