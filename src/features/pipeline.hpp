// End-to-end feature pipeline: packets -> flow table -> feature matrix.
//
// This is the "Bro processing" stage of the reproduction — the single entry
// point that turns one host's packet trace into the six binned feature
// series that every policy, detector and experiment consumes.
//
// Two ways in:
//   - extract_features(): one-shot over a fully materialized packet span.
//   - IngestSession: the streaming form. Producers (trace generator, trace
//     file readers, pcap import) push bounded, time-ordered batches through
//     the PacketSink interface, so peak memory is bounded by the batch size
//     instead of the trace length. The two forms are bit-identical: pushing
//     the same packets in any batch partition yields the same FeatureMatrix
//     and FlowTableStats as one extract_features() call.
#pragma once

#include <span>
#include <vector>

#include "features/extractor.hpp"
#include "net/flow_table.hpp"

namespace monohids::features {

struct PipelineConfig {
  util::BinGrid grid = util::BinGrid::minutes(15);
  util::Duration horizon = 5 * util::kMicrosPerWeek;  ///< paper: 5 weeks
  net::FlowTableConfig flow_config;
};

struct PipelineResult {
  FeatureMatrix matrix;
  net::FlowTableStats flow_stats;
};

/// Default producer batch bound: 64K packets (~1.5 MiB of PacketRecords).
inline constexpr std::size_t kDefaultIngestBatch = 64 * 1024;

/// Consumer side of the streaming ingest engine. Batches must be
/// time-ordered within and across calls; a batch may be any size (the
/// producers bound theirs, e.g. kDefaultIngestBatch packets).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void on_batch(std::span<const net::PacketRecord> batch) = 0;
};

/// Producer-side helper: accumulates pushed packets and forwards them to the
/// sink in batches of at most `max_batch`. Call finish() to flush the tail;
/// returns the total packet count. Used by the streaming trace readers.
class BatchingAdapter {
 public:
  BatchingAdapter(PacketSink& sink, std::size_t max_batch);

  void push(const net::PacketRecord& packet) {
    buffer_.push_back(packet);
    ++count_;
    if (buffer_.size() >= max_batch_) flush();
  }

  /// Flushes any buffered tail; safe to call once at end of input.
  std::uint64_t finish();

 private:
  void flush();

  PacketSink* sink_;
  std::size_t max_batch_;
  std::vector<net::PacketRecord> buffer_;
  std::uint64_t count_ = 0;
};

/// Streaming packet -> FeatureMatrix session for one monitored host.
///
/// Lifetime rules: push()/on_batch() any number of times with time-ordered
/// packets, then finish() exactly once — it closes remaining flows at
/// max(horizon, last packet) and returns the result. Pushing after finish()
/// (or finishing twice) throws PreconditionError. The per-packet hot loop is
/// allocation-free in steady state: the flow table keeps its slots, expiry
/// heap and event buffer; no per-packet vectors are created.
class IngestSession final : public PacketSink {
 public:
  explicit IngestSession(net::Ipv4Address monitored, const PipelineConfig& config = {});

  void on_batch(std::span<const net::PacketRecord> batch) override;
  void push(const net::PacketRecord& packet);

  /// Flushes remaining flows and finalizes the matrix. Call exactly once.
  [[nodiscard]] PipelineResult finish();

  /// Live flow-table stats (valid before and after finish()).
  [[nodiscard]] const net::FlowTableStats& stats() const noexcept { return table_.stats(); }
  [[nodiscard]] std::size_t active_flows() const noexcept { return table_.active_flows(); }

  /// Number of bins fully determined by the packets seen so far: every bin
  /// strictly below the bin of the last ingested packet, clamped to the
  /// horizon. All six series record at packet/flow-Start timestamps, which
  /// arrive in time order, so a bin below this boundary can never change
  /// again — it is safe to alarm on (the live daemon's watermark).
  [[nodiscard]] std::uint64_t completed_bins() const noexcept;

  /// Seals every completed bin (writes the pending distinct-destination
  /// count through the watermark) and returns completed_bins(). The sealed
  /// prefix of live_matrix() is bit-identical to the same prefix of the
  /// finish() matrix; sealing repeatedly as the stream advances is safe.
  std::uint64_t seal_completed();

  /// In-progress feature matrix: bins below the last seal_completed()
  /// boundary are final, later bins are still accumulating.
  [[nodiscard]] const FeatureMatrix& live_matrix() const noexcept {
    return extractor_.matrix();
  }

 private:
  net::Ipv4Address monitored_;
  util::BinGrid grid_;
  util::Duration horizon_;
  net::FlowTable table_;
  FeatureExtractor extractor_;
  util::Timestamp last_seen_ = 0;
  bool finished_ = false;
};

/// Runs `packets` (time-ordered, all involving `monitored`) through
/// connection tracking and feature extraction.
[[nodiscard]] PipelineResult extract_features(net::Ipv4Address monitored,
                                              std::span<const net::PacketRecord> packets,
                                              const PipelineConfig& config = {});

/// The seed batch pipeline (map-based ReferenceFlowTable, per-packet event
/// drains). Kept as the differential-testing and benchmarking baseline; the
/// streaming engine must stay byte-identical to this.
[[nodiscard]] PipelineResult extract_features_reference(
    net::Ipv4Address monitored, std::span<const net::PacketRecord> packets,
    const PipelineConfig& config = {});

}  // namespace monohids::features
