// End-to-end feature pipeline: packets -> flow table -> feature matrix.
//
// This is the "Bro processing" stage of the reproduction — the single entry
// point that turns one host's packet trace into the six binned feature
// series that every policy, detector and experiment consumes.
#pragma once

#include <span>

#include "features/extractor.hpp"
#include "net/flow_table.hpp"

namespace monohids::features {

struct PipelineConfig {
  util::BinGrid grid = util::BinGrid::minutes(15);
  util::Duration horizon = 5 * util::kMicrosPerWeek;  ///< paper: 5 weeks
  net::FlowTableConfig flow_config;
};

struct PipelineResult {
  FeatureMatrix matrix;
  net::FlowTableStats flow_stats;
};

/// Runs `packets` (time-ordered, all involving `monitored`) through
/// connection tracking and feature extraction.
[[nodiscard]] PipelineResult extract_features(net::Ipv4Address monitored,
                                              std::span<const net::PacketRecord> packets,
                                              const PipelineConfig& config = {});

}  // namespace monohids::features
