#include "stats/empirical.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <queue>

#include "stats/kernels.hpp"
#include "stats/quantile.hpp"
#include "util/error.hpp"

namespace monohids::stats {

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples) {
  for (double v : samples) {
    MONOHIDS_EXPECT(std::isfinite(v), "empirical samples must be finite");
  }
  // Traffic-count features are small non-negative integers, where the
  // kernels' counting sweep sorts in O(n + K); anything else falls back to
  // comparison sort. Both produce the same ascending multiset bit-for-bit.
  if (!kernels::batching_enabled() || !kernels::sort_counts(samples)) {
    std::sort(samples.begin(), samples.end());
  }
  auto arena = std::make_shared<const std::vector<double>>(std::move(samples));
  sorted_ = std::span<const double>(*arena);
  storage_ = std::move(arena);
  maybe_build_rank_table();
}

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> sorted, sorted_tag) {
  assert(std::is_sorted(sorted.begin(), sorted.end()));
  auto arena = std::make_shared<const std::vector<double>>(std::move(sorted));
  sorted_ = std::span<const double>(*arena);
  storage_ = std::move(arena);
  maybe_build_rank_table();
}

EmpiricalDistribution EmpiricalDistribution::from_sorted(std::vector<double> sorted) {
  return EmpiricalDistribution(std::move(sorted), sorted_tag{});
}

EmpiricalDistribution EmpiricalDistribution::view_of_sorted(std::span<const double> sorted,
                                                            bool with_rank_table) {
  assert(std::is_sorted(sorted.begin(), sorted.end()));
  EmpiricalDistribution view;
  view.sorted_ = sorted;
  if (with_rank_table) view.maybe_build_rank_table();
  return view;
}

void EmpiricalDistribution::maybe_build_rank_table() {
  if (!kernels::batching_enabled()) return;
  std::vector<std::uint32_t> cum;
  if (kernels::build_rank_table(sorted_, cum)) {
    rank_table_ = std::make_shared<const std::vector<std::uint32_t>>(std::move(cum));
  }
}

double EmpiricalDistribution::min() const {
  MONOHIDS_EXPECT(!empty(), "min of empty distribution");
  return sorted_.front();
}

double EmpiricalDistribution::max() const {
  MONOHIDS_EXPECT(!empty(), "max of empty distribution");
  return sorted_.back();
}

double EmpiricalDistribution::mean() const {
  MONOHIDS_EXPECT(!empty(), "mean of empty distribution");
  return std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
         static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::variance() const {
  MONOHIDS_EXPECT(!empty(), "variance of empty distribution");
  const double m = mean();
  double acc = 0.0;
  for (double v : sorted_) acc += (v - m) * (v - m);
  return acc / static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::stddev() const { return std::sqrt(variance()); }

double EmpiricalDistribution::quantile(double q) const {
  return quantile_nearest_rank_sorted(sorted_, q);
}

double EmpiricalDistribution::quantile_interpolated(double q) const {
  return quantile_interpolated_sorted(sorted_, q);
}

double EmpiricalDistribution::cdf(double x) const {
  MONOHIDS_EXPECT(!empty(), "cdf of empty distribution");
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::exceedance(double x) const { return 1.0 - cdf(x); }

void EmpiricalDistribution::rank_batch(std::span<const double> xs,
                                       std::span<std::uint32_t> out) const {
  MONOHIDS_EXPECT(xs.size() == out.size(), "rank_batch output size mismatch");
  if (xs.empty()) return;
  if (rank_table_ != nullptr && kernels::batching_enabled()) {
    const auto table = std::span<const std::uint32_t>(*rank_table_);
    const auto n = static_cast<std::uint32_t>(sorted_.size());
    for (std::size_t j = 0; j < xs.size(); ++j) {
      out[j] = kernels::rank_from_table(table, n, xs[j]);
    }
    return;
  }
  const auto& ops = kernels::active();
  if (std::is_sorted(xs.begin(), xs.end())) {
    ops.rank_sorted(sorted_, xs, 0.0, out.data());
  } else {
    ops.rank_unsorted(sorted_, xs, 0.0, out.data());
  }
}

void EmpiricalDistribution::cdf_batch(std::span<const double> xs,
                                      std::span<double> out) const {
  MONOHIDS_EXPECT(!empty(), "cdf of empty distribution");
  MONOHIDS_EXPECT(xs.size() == out.size(), "cdf_batch output size mismatch");
  thread_local std::vector<std::uint32_t> ranks;
  ranks.resize(xs.size());
  rank_batch(xs, ranks);
  const auto n = static_cast<double>(sorted_.size());
  for (std::size_t j = 0; j < xs.size(); ++j) {
    out[j] = static_cast<double>(ranks[j]) / n;
  }
}

void EmpiricalDistribution::exceedance_batch(std::span<const double> xs,
                                             std::span<double> out) const {
  MONOHIDS_EXPECT(!empty(), "cdf of empty distribution");
  MONOHIDS_EXPECT(xs.size() == out.size(), "exceedance_batch output size mismatch");
  thread_local std::vector<std::uint32_t> ranks;
  ranks.resize(xs.size());
  rank_batch(xs, ranks);
  const auto n = static_cast<double>(sorted_.size());
  for (std::size_t j = 0; j < xs.size(); ++j) {
    out[j] = 1.0 - static_cast<double>(ranks[j]) / n;
  }
}

double EmpiricalDistribution::shifted_cdf(double shift, double t) const {
  return cdf(t - shift);
}

double EmpiricalDistribution::max_hidden_shift(double t, double target_mass) const {
  MONOHIDS_EXPECT(!empty(), "max_hidden_shift of empty distribution");
  MONOHIDS_EXPECT(target_mass > 0.0 && target_mass <= 1.0,
                  "evasion probability must be in (0,1]");
  // P(X + b <= t) = cdf(t - b) >= target_mass
  //   <=> t - b >= quantile(target_mass)  (nearest-rank inverse CDF)
  //   <=> b <= t - quantile(target_mass).
  const double q = quantile(target_mass);
  return std::max(0.0, t - q);
}

EmpiricalDistribution EmpiricalDistribution::merge(
    std::span<const EmpiricalDistribution> parts) {
  std::vector<std::span<const double>> spans;
  spans.reserve(parts.size());
  for (const auto& p : parts) spans.push_back(p.samples());
  std::vector<double> all;
  merge_sorted_spans(spans, all);
  return from_sorted(std::move(all));
}

void merge_sorted_spans(std::span<const std::span<const double>> parts,
                        std::vector<double>& out) {
  // Small-integer-valued pools (traffic counts) merge with one counting
  // sweep — O(total + K) instead of O(total log k) heap operations — with
  // bit-identical output; everything else takes the heap path below.
  if (kernels::batching_enabled() && kernels::counting_merge(parts, out)) return;

  out.clear();
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  out.reserve(total);

  if (parts.size() == 1) {
    out.insert(out.end(), parts[0].begin(), parts[0].end());
    return;
  }
  if (parts.size() == 2) {
    std::merge(parts[0].begin(), parts[0].end(), parts[1].begin(), parts[1].end(),
               std::back_inserter(out));
    return;
  }

  // Min-heap of (next value, part index); cursors track consumption.
  struct Head {
    double value;
    std::size_t part;
  };
  const auto greater = [](const Head& a, const Head& b) { return a.value > b.value; };
  std::vector<Head> heap;
  std::vector<std::size_t> cursor(parts.size(), 0);
  heap.reserve(parts.size());
  for (std::size_t p = 0; p < parts.size(); ++p) {
    if (!parts[p].empty()) heap.push_back({parts[p][0], p});
  }
  std::make_heap(heap.begin(), heap.end(), greater);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    const Head head = heap.back();
    heap.pop_back();
    out.push_back(head.value);
    const std::size_t next = ++cursor[head.part];
    if (next < parts[head.part].size()) {
      heap.push_back({parts[head.part][next], head.part});
      std::push_heap(heap.begin(), heap.end(), greater);
    }
  }
}

}  // namespace monohids::stats
