#include "stats/empirical.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/quantile.hpp"
#include "util/error.hpp"

namespace monohids::stats {

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  for (double v : sorted_) {
    MONOHIDS_EXPECT(std::isfinite(v), "empirical samples must be finite");
  }
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalDistribution::min() const {
  MONOHIDS_EXPECT(!empty(), "min of empty distribution");
  return sorted_.front();
}

double EmpiricalDistribution::max() const {
  MONOHIDS_EXPECT(!empty(), "max of empty distribution");
  return sorted_.back();
}

double EmpiricalDistribution::mean() const {
  MONOHIDS_EXPECT(!empty(), "mean of empty distribution");
  return std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
         static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::variance() const {
  MONOHIDS_EXPECT(!empty(), "variance of empty distribution");
  const double m = mean();
  double acc = 0.0;
  for (double v : sorted_) acc += (v - m) * (v - m);
  return acc / static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::stddev() const { return std::sqrt(variance()); }

double EmpiricalDistribution::quantile(double q) const {
  return quantile_nearest_rank_sorted(sorted_, q);
}

double EmpiricalDistribution::quantile_interpolated(double q) const {
  return quantile_interpolated_sorted(sorted_, q);
}

double EmpiricalDistribution::cdf(double x) const {
  MONOHIDS_EXPECT(!empty(), "cdf of empty distribution");
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::exceedance(double x) const { return 1.0 - cdf(x); }

double EmpiricalDistribution::shifted_cdf(double shift, double t) const {
  return cdf(t - shift);
}

double EmpiricalDistribution::max_hidden_shift(double t, double target_mass) const {
  MONOHIDS_EXPECT(!empty(), "max_hidden_shift of empty distribution");
  MONOHIDS_EXPECT(target_mass > 0.0 && target_mass <= 1.0,
                  "evasion probability must be in (0,1]");
  // P(X + b <= t) = cdf(t - b) >= target_mass
  //   <=> t - b >= quantile(target_mass)  (nearest-rank inverse CDF)
  //   <=> b <= t - quantile(target_mass).
  const double q = quantile(target_mass);
  return std::max(0.0, t - q);
}

EmpiricalDistribution EmpiricalDistribution::merge(
    std::span<const EmpiricalDistribution> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<double> all;
  all.reserve(total);
  for (const auto& p : parts) {
    const auto s = p.samples();
    all.insert(all.end(), s.begin(), s.end());
  }
  return EmpiricalDistribution(std::move(all));
}

}  // namespace monohids::stats
