#include "stats/sampling.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace monohids::stats {

LogNormalSampler::LogNormalSampler(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  MONOHIDS_EXPECT(sigma >= 0.0, "log-normal sigma must be non-negative");
}

double LogNormalSampler::sample(util::Xoshiro256& rng) const {
  return std::exp(mu_ + sigma_ * sample_standard_normal(rng));
}

double LogNormalSampler::median() const { return std::exp(mu_); }
double LogNormalSampler::mean() const { return std::exp(mu_ + sigma_ * sigma_ / 2.0); }

ParetoSampler::ParetoSampler(double scale_xm, double shape_alpha)
    : xm_(scale_xm), alpha_(shape_alpha) {
  MONOHIDS_EXPECT(scale_xm > 0.0, "Pareto scale must be positive");
  MONOHIDS_EXPECT(shape_alpha > 0.0, "Pareto shape must be positive");
}

double ParetoSampler::sample(util::Xoshiro256& rng) const {
  // Inverse CDF: x = xm / u^(1/alpha); guard u > 0.
  double u = rng.uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm_ / std::pow(u, 1.0 / alpha_);
}

ZipfSampler::ZipfSampler(std::uint32_t n, double exponent_s) {
  MONOHIDS_EXPECT(n > 0, "Zipf support must be non-empty");
  MONOHIDS_EXPECT(exponent_s >= 0.0, "Zipf exponent must be non-negative");
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint32_t k = 1; k <= n; ++k) {
    total += std::pow(static_cast<double>(k), -exponent_s);
    cdf_[k - 1] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::uint32_t ZipfSampler::sample(util::Xoshiro256& rng) const {
  const double u = rng.uniform01();
  // binary search for the first cdf entry >= u
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<std::uint32_t>(lo + 1);  // ranks are 1-based
}

double sample_standard_normal(util::Xoshiro256& rng) {
  double u1 = rng.uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = rng.uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double sample_exponential(util::Xoshiro256& rng, double rate) {
  MONOHIDS_EXPECT(rate > 0.0, "exponential rate must be positive");
  double u = rng.uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

std::uint64_t sample_poisson(util::Xoshiro256& rng, double mean) {
  MONOHIDS_EXPECT(mean >= 0.0, "Poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion
    const double limit = std::exp(-mean);
    double product = rng.uniform01();
    std::uint64_t k = 0;
    while (product > limit) {
      product *= rng.uniform01();
      ++k;
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for traffic
  // synthesis (relative error < 1% for mean >= 30).
  const double z = sample_standard_normal(rng);
  const double v = mean + std::sqrt(mean) * z + 0.5;
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

std::uint64_t sample_uniform_int(util::Xoshiro256& rng, std::uint64_t lo, std::uint64_t hi) {
  MONOHIDS_EXPECT(lo <= hi, "uniform-int range is inverted");
  const std::uint64_t span = hi - lo + 1;  // span == 0 means the full 2^64 range
  if (span == 0) return rng();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span + 1) % span;
  std::uint64_t draw;
  do {
    draw = rng();
  } while (draw > limit);
  return lo + draw % span;
}

}  // namespace monohids::stats
