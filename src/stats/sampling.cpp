#include "stats/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace monohids::stats {

LogNormalSampler::LogNormalSampler(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  MONOHIDS_EXPECT(sigma >= 0.0, "log-normal sigma must be non-negative");
}

double LogNormalSampler::median() const { return std::exp(mu_); }
double LogNormalSampler::mean() const { return std::exp(mu_ + sigma_ * sigma_ / 2.0); }

ParetoSampler::ParetoSampler(double scale_xm, double shape_alpha)
    : xm_(scale_xm), alpha_(shape_alpha) {
  MONOHIDS_EXPECT(scale_xm > 0.0, "Pareto scale must be positive");
  MONOHIDS_EXPECT(shape_alpha > 0.0, "Pareto shape must be positive");
}

double ParetoSampler::sample(util::Xoshiro256& rng) const {
  // Inverse CDF: x = xm / u^(1/alpha); guard u > 0.
  double u = rng.uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm_ / std::pow(u, 1.0 / alpha_);
}

ZipfSampler::ZipfSampler(std::uint32_t n, double exponent_s) {
  MONOHIDS_EXPECT(n > 0, "Zipf support must be non-empty");
  MONOHIDS_EXPECT(exponent_s >= 0.0, "Zipf exponent must be non-negative");
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint32_t k = 1; k <= n; ++k) {
    total += std::pow(static_cast<double>(k), -exponent_s);
    cdf_[k - 1] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::uint32_t ZipfSampler::sample(util::Xoshiro256& rng) const {
  const double u = rng.uniform01();
  // binary search for the first cdf entry >= u
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<std::uint32_t>(lo + 1);  // ranks are 1-based
}

std::uint64_t sample_poisson(util::Xoshiro256& rng, double mean) {
  MONOHIDS_EXPECT(mean >= 0.0, "Poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion
    const double limit = std::exp(-mean);
    double product = rng.uniform01();
    std::uint64_t k = 0;
    while (product > limit) {
      product *= rng.uniform01();
      ++k;
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for traffic
  // synthesis (relative error < 1% for mean >= 30).
  const double z = sample_standard_normal(rng);
  const double v = mean + std::sqrt(mean) * z + 0.5;
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

namespace batch {

std::uint64_t bernoulli_threshold(double p) noexcept {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return std::uint64_t{1} << 53;
  // Ceil estimate, then fix up: p * 2^53 can round either way, but the
  // exact boundary is within one ulp of it, so a couple of compares of
  // exact to_unit values land the true threshold.
  std::uint64_t t = static_cast<std::uint64_t>(std::ceil(p * 0x1.0p53));
  while (t > 0 && to_unit(t - 1) >= p) --t;
  while (t < (std::uint64_t{1} << 53) && to_unit(t) < p) ++t;
  return t;
}

void prepare_poisson_rows(std::span<const double> means, std::span<PoissonRow> rows) {
  MONOHIDS_EXPECT(rows.size() >= means.size(), "prepared rows span too small");
  double prev_mean = -1.0, prev_limit = 0.0;
  std::uint64_t prev_threshold = 0;
  for (std::size_t i = 0; i < means.size(); ++i) {
    const double mean = means[i];
    MONOHIDS_EXPECT(mean >= 0.0, "Poisson mean must be non-negative");
    PoissonRow& row = rows[i];
    row.mean = mean;
    if (mean == 0.0 || mean >= 30.0) continue;  // limit/threshold unused
    if (mean != prev_mean) {
      prev_mean = mean;
      prev_limit = std::exp(-mean);
      prev_threshold = knuth_zero_threshold(prev_limit);
    }
    row.limit = prev_limit;
    row.zero_threshold = prev_threshold;
  }
}

void prepare_poisson_rows32(std::span<const double> means, std::span<PoissonRow32> rows) {
  MONOHIDS_EXPECT(rows.size() >= means.size(), "prepared rows span too small");
  double prev_mean = -1.0, prev_limit = 0.0;
  std::uint64_t prev_threshold = 0;
  for (std::size_t i = 0; i < means.size(); ++i) {
    const double mean = means[i];
    MONOHIDS_EXPECT(mean >= 0.0, "Poisson mean must be non-negative");
    PoissonRow32& row = rows[i];
    row.mean = mean;
    if (mean == 0.0 || mean >= kNormalCutoff32) continue;  // limit/threshold unused
    if (mean != prev_mean) {
      prev_mean = mean;
      prev_limit = std::exp(-mean);
      prev_threshold = knuth_zero_threshold32(prev_limit);
    }
    row.limit = prev_limit;
    row.zero_threshold = prev_threshold;
  }
}

namespace {

/// Word-space threshold for one CDF value: t = min(floor(cdf * 2^32),
/// 2^32 - 1). A word clears the threshold iff u = w / 2^32 > cdf, so
/// cdf >= 1 yields an uncrossable entry. The double-precision table build
/// IS the draw contract (the same thresholds on every platform with IEEE
/// doubles); distribution tests validate the rows against reference pmfs.
std::uint32_t cdf_threshold32(double cdf) noexcept {
  if (cdf >= 1.0) return 0xFFFFFFFFu;
  if (cdf <= 0.0) return 0;
  const double t = std::floor(cdf * 0x1.0p32);
  return t >= 0x1.0p32 ? 0xFFFFFFFFu : static_cast<std::uint32_t>(t);
}

}  // namespace

std::uint64_t poisson_normal_word32(std::uint32_t w, double mean) noexcept {
  double u = to_unit32(w);
  if (u <= 0.0) u = 0x1.0p-33;
  const double v = mean + std::sqrt(mean) * inverse_normal_cdf(u) + 0.5;
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

PoissonSumCdf::PoissonSumCdf(double mean_step, std::uint32_t stat_cap)
    : mean_step_(mean_step), stat_cap_(stat_cap) {
  MONOHIDS_EXPECT(mean_step > 0.0, "Poisson-sum mean step must be positive");
  MONOHIDS_EXPECT(stat_cap >= 1, "Poisson-sum table needs at least the zero row");
  MONOHIDS_EXPECT(mean_step * (stat_cap - 1) < kNormalCutoff32,
                  "Poisson-sum rows must stay below the normal cutoff");
  rows_.resize(static_cast<std::size_t>(stat_cap) * kCdfRowLen);
  for (std::uint32_t s = 0; s < stat_cap; ++s) {
    std::uint32_t* row = rows_.data() + static_cast<std::size_t>(s) * kCdfRowLen;
    const double mean = mean_step * static_cast<double>(s);
    double pk = std::exp(-mean), cum = pk;
    row[0] = cdf_threshold32(cum);
    for (std::size_t k = 1; k < kCdfRowLen; ++k) {
      pk *= mean * kInvK[k];
      cum += pk;
      row[k] = cdf_threshold32(cum);
    }
  }
}

BinomialCdf::BinomialCdf(double p) : p_(p) {
  MONOHIDS_EXPECT(p > 0.0 && p < 1.0, "Binomial success probability must be in (0, 1)");
  // Threshold rows for every n in the tabulated regime (np < cutoff), and
  // never longer than a row can hold (the row-scan clamp at kCdfRowLen
  // must stay unreachable: P(X > 47 | np < 12) < 1e-15).
  n_cap_ = std::min<std::uint32_t>(static_cast<std::uint32_t>(kNormalCutoff32 / p) + 1,
                                   1u << 14);
  const double q = 1.0 - p, podq = p / q;
  rows_.resize(static_cast<std::size_t>(n_cap_) * kCdfRowLen);
  for (std::uint32_t n = 0; n < n_cap_; ++n) {
    std::uint32_t* row = rows_.data() + static_cast<std::size_t>(n) * kCdfRowLen;
    double pk = 1.0;
    for (std::uint32_t j = 0; j < n; ++j) pk *= q;  // q^n
    double cum = pk;
    row[0] = cdf_threshold32(cum);
    for (std::size_t k = 1; k < kCdfRowLen; ++k) {
      if (k > n) {
        row[k] = 0xFFFFFFFFu;  // past the support: CDF is exactly 1
        continue;
      }
      pk *= static_cast<double>(n - k + 1) * kInvK[k] * podq;
      cum += pk;
      row[k] = cdf_threshold32(cum);
    }
  }
}

void sample_uniform01_batch(util::Xoshiro256& rng, std::span<double> out) {
  for (double& v : out) v = rng.uniform01();
}

void sample_exponential_batch(util::Xoshiro256& rng, double rate, std::span<double> out) {
  MONOHIDS_EXPECT(rate > 0.0, "exponential rate must be positive");
  for (double& v : out) {
    double u = rng.uniform01();
    if (u <= 0.0) u = 0x1.0p-53;
    v = -std::log(u) / rate;
  }
}

namespace {

/// The direct (pow-based) Pareto count the table must reproduce exactly.
std::uint32_t pareto_count_direct(double u, double inv_shape, std::uint32_t cap) {
  if (u <= 0.0) u = 0x1.0p-53;
  const double v = 1.0 / std::pow(u, inv_shape);
  return static_cast<std::uint32_t>(std::min<double>(v, static_cast<double>(cap)));
}

}  // namespace

ParetoCountTable::ParetoCountTable(double shape, std::uint32_t cap, unsigned word_bits)
    : cap_(cap) {
  MONOHIDS_EXPECT(shape > 0.0, "Pareto shape must be positive");
  MONOHIDS_EXPECT(cap >= 1, "Pareto count cap must be at least 1");
  MONOHIDS_EXPECT(word_bits >= 16 && word_bits <= 53, "Pareto word grain out of range");
  const double inv_shape = 1.0 / shape;
  const double unit = std::ldexp(1.0, -static_cast<int>(word_bits));  // 2^-word_bits
  const std::uint64_t word_count = std::uint64_t{1} << word_bits;
  boundary_.resize(cap - 1);
  for (std::uint32_t k = 1; k < cap; ++k) {
    // Largest m with count >= k + 1; count is non-increasing in m and
    // count(0) = cap (the word 0 is guarded up to 2^-53), so the invariant
    // holds at lo = 0.
    std::uint64_t lo = 0, hi = word_count - 1;
    while (lo < hi) {
      const std::uint64_t mid = lo + (hi - lo + 1) / 2;
      if (pareto_count_direct(static_cast<double>(mid) * unit, inv_shape, cap) >= k + 1) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    boundary_[k - 1] = lo;
    // The boundary must be exact — both sides of it — or table counts
    // silently diverge from the pow path for rare draws.
    MONOHIDS_ENSURE(pareto_count_direct(static_cast<double>(lo) * unit, inv_shape, cap) >=
                        k + 1,
                    "Pareto boundary below its own count");
    MONOHIDS_ENSURE(lo + 1 >= word_count ||
                        pareto_count_direct(static_cast<double>(lo + 1) * unit, inv_shape,
                                            cap) < k + 1,
                    "Pareto boundary not tight");
  }
}

}  // namespace batch

std::uint64_t sample_uniform_int(util::Xoshiro256& rng, std::uint64_t lo, std::uint64_t hi) {
  MONOHIDS_EXPECT(lo <= hi, "uniform-int range is inverted");
  const std::uint64_t span = hi - lo + 1;  // span == 0 means the full 2^64 range
  if (span == 0) return rng();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span + 1) % span;
  std::uint64_t draw;
  do {
    draw = rng();
  } while (draw > limit);
  return lo + draw % span;
}

}  // namespace monohids::stats
