// Streaming moments (Welford's algorithm).
//
// End hosts learn their traffic profile online with bounded memory; the
// mean + k*sigma threshold heuristic only needs running moments, which this
// accumulator provides in a numerically stable single pass.
#pragma once

#include <cstdint>
#include <limits>

namespace monohids::stats {

/// Single-pass accumulator for count / mean / variance / min / max.
class RunningMoments {
 public:
  void add(double value) noexcept;

  /// Merges another accumulator (parallel/chunked accumulation).
  void merge(const RunningMoments& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }

  /// Population variance (divide by n). Zero for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;

  /// Sample variance (divide by n-1). Zero for fewer than 2 samples.
  [[nodiscard]] double sample_variance() const noexcept;

  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace monohids::stats
