// Greenwald–Khanna ε-approximate quantile sketch (SIGMOD 2001).
//
// Complements P²: one GK sketch answers *all* quantile queries with rank
// error at most ε·n using O((1/ε)·log(ε·n)) space — the right tool when a
// host tracks both the 99th and 99.9th percentile of a feature, or when the
// central console wants mergeable-ish compact summaries instead of shipping
// full distributions.
#pragma once

#include <cstdint>
#include <vector>

namespace monohids::stats {

class GkSketch {
 public:
  /// `epsilon` in (0, 0.5): maximum rank error as a fraction of n.
  explicit GkSketch(double epsilon);

  void add(double value);

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] std::size_t tuple_count() const noexcept { return tuples_.size(); }
  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }

  /// Value whose rank is within ε·n of ceil(q·n). Requires n > 0.
  [[nodiscard]] double quantile(double q) const;

 private:
  struct Tuple {
    double value;
    std::uint64_t g;      // rank gap to predecessor
    std::uint64_t delta;  // rank uncertainty
  };

  void compress();

  double epsilon_;
  std::uint64_t n_ = 0;
  std::vector<Tuple> tuples_;  // sorted by value
};

}  // namespace monohids::stats
