// Greenwald–Khanna ε-approximate quantile sketch (SIGMOD 2001).
//
// Complements P²: one GK sketch answers *all* quantile queries with rank
// error at most ε·n using O((1/ε)·log(ε·n)) space — the right tool when a
// host tracks both the 99th and 99.9th percentile of a feature, or when the
// central console wants mergeable compact summaries instead of shipping
// full distributions.
//
// Fleet-mode surface (sim/fleet.hpp): hosts summarize each week's bin
// counts with from_sorted(), the console folds host summaries into pooled
// group sketches with merge() (the ε-rank guarantee survives any merge
// tree — see the differential suite), sweeps quantile grids with
// quantile_batch() (one kernels-dispatched merge-scan over the rank
// envelope instead of a scan per query), and ships summaries across
// processes with serialize()/deserialize().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace monohids::stats {

class GkSketch {
 public:
  /// `epsilon` in (0, 0.5): maximum rank error as a fraction of n.
  explicit GkSketch(double epsilon);

  void add(double value);

  /// Builds a sketch of an already-sorted (ascending) stream in one pass:
  /// run-length tuples with zero rank uncertainty, compressed once to the
  /// ε band. Orders of magnitude faster than add()-ing value by value (no
  /// per-insert search) and tighter (delta = 0 everywhere), with the same
  /// ε-rank guarantee. The fleet reducer's construction path.
  [[nodiscard]] static GkSketch from_sorted(std::span<const double> sorted, double epsilon);

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] std::size_t tuple_count() const noexcept { return tuples_.size(); }
  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }

  /// Value whose rank is within ε·n of ceil(q·n). Requires n > 0.
  [[nodiscard]] double quantile(double q) const;

  /// Batched quantile(): out[j] = quantile(qs[j]) for an ascending batch,
  /// answered by one merge-scan of the query ranks against the sketch's
  /// monotone rank envelope through the stats::kernels dispatch table
  /// (rank_sorted) — O(tuples + |qs|) instead of O(tuples·|qs|). Results
  /// are identical to per-call quantile() query for query.
  void quantile_batch(std::span<const double> qs, std::span<double> out) const;

  /// Folds `other` into this sketch: afterwards this summarizes the union
  /// of both input streams. Both sketches must share the same ε; the
  /// merged sketch keeps the ε-rank guarantee (tuple uncertainties are
  /// recombined from both rank envelopes, then compressed to the ε band),
  /// so summaries can be folded in any shape — pairwise, tree, or the
  /// fleet console's left-fold over hosts of a group. Deterministic: the
  /// result depends only on (this, other) contents, with value ties taken
  /// from this sketch first.
  void merge(const GkSketch& other);

  /// Writes a portable binary image (magic, version, ε, n, tuples).
  void serialize(std::ostream& out) const;

  /// Reads a serialize()d image; throws util::InputError on truncated or
  /// corrupt input (bad magic/version, non-finite or descending values,
  /// inconsistent rank bookkeeping). The round-trip is exact: the restored
  /// sketch answers every query identically.
  [[nodiscard]] static GkSketch deserialize(std::istream& in);

  /// Heap footprint of the summary (the fleet's per-host memory accounting).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return tuples_.capacity() * sizeof(Tuple);
  }

 private:
  struct Tuple {
    double value;
    std::uint64_t g;      // rank gap to predecessor
    std::uint64_t delta;  // rank uncertainty
  };

  void compress();

  double epsilon_;
  std::uint64_t n_ = 0;
  std::vector<Tuple> tuples_;  // sorted by value
};

}  // namespace monohids::stats
