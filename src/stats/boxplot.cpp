#include "stats/boxplot.hpp"

#include <algorithm>
#include <vector>

#include "stats/quantile.hpp"
#include "util/error.hpp"

namespace monohids::stats {

util::BoxStats box_stats(std::span<const double> samples) {
  MONOHIDS_EXPECT(!samples.empty(), "box stats of an empty sample");
  std::vector<double> v(samples.begin(), samples.end());
  std::sort(v.begin(), v.end());

  util::BoxStats s;
  s.q1 = quantile_interpolated_sorted(v, 0.25);
  s.median = quantile_interpolated_sorted(v, 0.50);
  s.q3 = quantile_interpolated_sorted(v, 0.75);
  const double iqr = s.q3 - s.q1;
  const double lo_fence = s.q1 - 1.5 * iqr;
  const double hi_fence = s.q3 + 1.5 * iqr;

  s.whisker_low = s.q1;
  s.whisker_high = s.q3;
  s.outliers = 0;
  for (double x : v) {
    if (x < lo_fence || x > hi_fence) {
      ++s.outliers;
      continue;
    }
    s.whisker_low = std::min(s.whisker_low, x);
    s.whisker_high = std::max(s.whisker_high, x);
  }
  return s;
}

}  // namespace monohids::stats
