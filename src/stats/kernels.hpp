// Batched evaluation kernels with runtime SIMD dispatch.
//
// Every experiment bottoms out in the same scalar inner loop: one binary
// search per EmpiricalDistribution::cdf/exceedance call and one per attack
// size inside AttackModel::mean_fn, issued once per candidate threshold per
// user per feature per round. This layer replaces those per-call searches
// with batched, cache-friendly sweeps:
//
//   - rank_sorted: a single merge-scan over the sorted-sample arena for an
//     ascending query batch — O(n + T) for a whole threshold sweep instead
//     of O(T log n) binary searches.
//   - rank_unsorted: branchless rank queries in arbitrary order (vectorized
//     partition-count on small arenas, branchless binary search otherwise).
//   - rank_grid: the full attack-size x threshold grid of shifted ranks in
//     one tiled pass over the arena (AttackModel::mean_fn_batch).
//   - count_exceed / replay_detect / joint_exceed: the detector-side
//     bin-vs-threshold loops (alarm counting, storm replay, joint alarms).
//
// Back-ends: portable scalar (the reference), AVX2 and NEON intrinsics.
// One is selected at startup via cpuid-style runtime detection behind a
// function-pointer table; MONOHIDS_SIMD=scalar|avx2|neon overrides the
// choice for testing, and force_backend() does the same in-process.
//
// Bit-identity contract: every kernel computes integer ranks/counts, which
// are exact, and all floating-point post-processing (rank/n divisions,
// accumulation order) happens in shared code in the same order as the seed
// per-call path. Dispatched results are therefore bit-identical to the
// scalar seed path on every back-end and at any thread count — which keeps
// sim::AnalysisCache memoization keys valid (cached artifacts never depend
// on the back-end that produced them).
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace monohids::stats::kernels {

enum class Backend : std::uint8_t { Scalar = 0, Avx2 = 1, Neon = 2 };

/// Function-pointer table of one back-end. All `arena` arguments are
/// ascending sorted-sample spans (an EmpiricalDistribution's arena); all
/// ranks are upper-bound counts #{v in arena : v <= query}, so cdf(q) is
/// rank / n and the paper's strict alarm condition g > T is 1 - cdf(T).
struct Ops {
  const char* name;

  /// out[j] = #{v in arena : v <= xs[j] - shift}. `xs` must be ascending;
  /// the whole batch is answered with one merge-scan over the arena.
  void (*rank_sorted)(std::span<const double> arena, std::span<const double> xs,
                      double shift, std::uint32_t* out);

  /// Same contract with `xs` in arbitrary order (per-query partition-count
  /// or branchless binary search; the strategy is a back-end detail, the
  /// integer result is identical).
  void (*rank_unsorted)(std::span<const double> arena, std::span<const double> xs,
                        double shift, std::uint32_t* out);

  /// Full attack-size x threshold grid in one tiled pass over the arena:
  /// ranks[s * thresholds.size() + j] = #{v <= thresholds[j] - sizes[s]}.
  /// `thresholds` must be ascending; `sizes` may be any order.
  void (*rank_grid)(std::span<const double> arena, std::span<const double> thresholds,
                    std::span<const double> sizes, std::uint32_t* ranks);

  /// #{v in values : v > threshold} over an unsorted series (detector alarm
  /// counting, marginal alarm rates).
  std::uint64_t (*count_exceed)(std::span<const double> values, double threshold);

  /// Storm replay's fused bin-vs-threshold loop over parallel benign/attack
  /// series: benign alarms (benign > t), attacked bins (attack > 0) and
  /// detections (attack > 0 and benign + attack > t).
  void (*replay_detect)(std::span<const double> benign, std::span<const double> attack,
                        double threshold, std::uint64_t& benign_alarms,
                        std::uint64_t& attacked_bins, std::uint64_t& detected);

  /// Joint alarm counting across features sharing one bin grid: per-feature
  /// marginal alarm counts plus the count of bins where any feature alarms.
  /// All outputs are overwritten (never accumulated into).
  void (*joint_exceed)(const std::span<const double>* slices, const double* thresholds,
                       std::size_t feature_count, std::size_t bins,
                       std::uint64_t* marginal, std::uint64_t& joint);

  /// out[i] = (double)values[i]: widens an SoA staging buffer of integer
  /// tallies (the batched trace generator's per-bin counts) into a feature
  /// series. Values must be < 2^31 (per-bin traffic tallies always are);
  /// within that range the conversion is exact in every back-end, so the
  /// widened series is bit-identical across Scalar/AVX2/NEON.
  void (*widen_u32)(std::span<const std::uint32_t> values, double* out);

  /// Writes `blocks` consecutive Philox4x32-10 counter blocks (4 uint32
  /// words each) of stream (key, stream) starting at block `first_block`
  /// into `out` — the v2 scenario contract's bulk draw generator
  /// (util::Philox4x32::fill_blocks is the reference). Pure integer
  /// function of its arguments, so every back-end produces identical words
  /// and v2 scenarios are SIMD-invariant by construction.
  void (*philox_fill)(std::uint64_t key, std::uint64_t stream,
                      std::uint64_t first_block, std::uint32_t* out,
                      std::size_t blocks);

  /// Bulk one-word Poisson count resolution — the v2 scenario contract's
  /// fused session-count sweep: counts[i] resolves words[i] against mean
  /// means[i] (exp via stats::batch::exp_neg12 then exact inversion below
  /// the normal cutoff, stats::batch::poisson_normal_word32 above; mean 0
  /// yields 0). Returns the sum of counts. Every floating-point step is
  /// either an exact fused multiply-add or a single IEEE op in fixed
  /// order, so all back-ends produce bit-identical counts (the v2
  /// SIMD-invariance contract).
  std::uint64_t (*poisson_counts)(const double* means, const std::uint32_t* words,
                                  std::uint32_t* counts, std::size_t n);
};

/// The dispatched table: resolved once on first use from runtime CPU
/// detection, or from MONOHIDS_SIMD=scalar|avx2|neon when set. An
/// unavailable requested back-end falls back to the best available one.
[[nodiscard]] const Ops& active() noexcept;
[[nodiscard]] Backend active_backend() noexcept;

/// The table of one specific back-end, or nullptr when it is not available
/// on this host/build (e.g. neon on x86). Scalar is always available.
[[nodiscard]] const Ops* ops_for(Backend backend) noexcept;
[[nodiscard]] bool backend_available(Backend backend) noexcept;

[[nodiscard]] std::string_view backend_name(Backend backend) noexcept;

/// Overrides the dispatched back-end in-process (tests/benches). Returns
/// false (and leaves dispatch untouched) when the back-end is unavailable.
bool force_backend(Backend backend) noexcept;

/// Restores startup dispatch (CPU detection + MONOHIDS_SIMD).
void reset_backend() noexcept;

/// Global batching toggle. When disabled, every rewired consumer
/// (EmpiricalDistribution batch queries, AttackModel::mean_fn, the
/// optimizing heuristics, roc_curve, attacker curves, replay/joint loops,
/// and the arena sort/merge fast paths) runs the original per-call seed
/// code instead — the A side of the kernel benches and differential tests.
/// Enabled by default.
[[nodiscard]] bool batching_enabled() noexcept;
void set_batching_enabled(bool enabled) noexcept;

/// RAII batching toggle for benches/tests.
class ScopedBatchMode {
 public:
  explicit ScopedBatchMode(bool enabled) : previous_(batching_enabled()) {
    set_batching_enabled(enabled);
  }
  ~ScopedBatchMode() { set_batching_enabled(previous_); }
  ScopedBatchMode(const ScopedBatchMode&) = delete;
  ScopedBatchMode& operator=(const ScopedBatchMode&) = delete;

 private:
  bool previous_;
};

/// Arena-preparation fast path: sorts `samples` ascending with an O(n + K)
/// counting sweep when every value is a small non-negative integer (traffic
/// counts almost always are; K caps at 65535). Returns false — leaving
/// `samples` untouched — when the data does not qualify, in which case the
/// caller falls back to comparison sort. The sorted result is bit-identical
/// to std::sort's.
bool sort_counts(std::vector<double>& samples) noexcept;

/// Counting-sweep k-way merge of ascending spans into `out` (cleared
/// first): the pooled-distribution analog of sort_counts. Returns false
/// with `out` unspecified when the data does not qualify (caller falls back
/// to the heap merge).
bool counting_merge(std::span<const std::span<const double>> parts,
                    std::vector<double>& out);

/// Builds the cumulative rank table of an ascending integer-count arena:
/// cum[k] = #{v in arena : v <= k} for k in [0, max(arena)]. Turns every
/// upper-bound rank query into one O(1) load (see rank_from_table), which
/// collapses the attack-size x threshold rank grids the heuristics sweep.
/// Returns false (cum cleared) when the arena does not qualify — same
/// small-non-negative-integer criterion as sort_counts.
bool build_rank_table(std::span<const double> sorted_arena,
                      std::vector<std::uint32_t>& cum);

/// O(1) upper-bound rank from a build_rank_table table: #{v <= q} for an
/// arena of n samples. Exact for any real query against integer samples
/// (#{v <= q} = #{v <= floor(q)}), so the result is bit-identical to
/// std::upper_bound on the arena itself.
[[nodiscard]] inline std::uint32_t rank_from_table(std::span<const std::uint32_t> cum,
                                                   std::uint32_t n, double q) noexcept {
  if (!(q >= 0.0)) return 0;  // below every count (also rejects NaN)
  if (q >= static_cast<double>(cum.size())) return n;
  return cum[static_cast<std::size_t>(q)];
}

namespace detail {

/// Ascending-sweep strategy crossover shared by the back-ends: a merge-scan
/// touches ~n + t samples, per-query branchless binary search ~t*(log2 n +
/// 1) dependent loads. Binary wins for sparse sweeps over large arenas —
/// e.g. a few hundred candidate thresholds against a 200k-sample pooled
/// arena — while the merge-scan wins on dense per-user sweeps. Both
/// strategies return the same exact integer ranks; this is purely a cost
/// model and never changes results.
[[nodiscard]] constexpr bool sweep_prefers_binary(std::size_t n, std::size_t t) noexcept {
  if (n < 2048) return false;  // small arenas stay cache-resident either way
  const auto log2n = static_cast<std::size_t>(std::bit_width(n));
  return t * (log2n + 1) < n;
}

/// The portable poisson_counts implementation (the scalar back-end's entry
/// and the reference for the SIMD ones; also the fallback the AVX2 kernel
/// funnels normal-regime quads and tails through, so every back-end's rare
/// lanes run literally the same compiled code).
std::uint64_t poisson_counts_portable(const double* means, const std::uint32_t* words,
                                      std::uint32_t* counts, std::size_t n);

/// Per-back-end tables; nullptr when compiled out or unsupported at
/// runtime-detection level (checked by kernels.cpp before exposure).
[[nodiscard]] const Ops* scalar_ops() noexcept;
[[nodiscard]] const Ops* avx2_ops() noexcept;    ///< null unless built with AVX2 support
[[nodiscard]] const Ops* neon_ops() noexcept;    ///< null unless aarch64
[[nodiscard]] bool cpu_supports_avx2() noexcept;
}  // namespace detail

}  // namespace monohids::stats::kernels
