// AVX2 back-end. This translation unit is compiled with -mavx2 (see
// src/stats/CMakeLists.txt); its functions are only ever reached through
// the dispatch table after a runtime cpuid check, so the binary stays safe
// on pre-AVX2 hardware.
//
// Exactness: every function here computes integer ranks/counts from IEEE
// comparisons (and one vector add in replay_detect whose lanes are the
// exact scalar additions), so results are bit-identical to the scalar
// back-end by construction — no reassociated floating-point reductions.
#include "stats/kernels.hpp"
#include "stats/sampling.hpp"
#include "util/rng.hpp"

#if defined(__x86_64__) && defined(MONOHIDS_COMPILE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>

namespace monohids::stats::kernels {
namespace {

/// Advances `i` over ascending a[i..limit) while a[i] <= q, four lanes at a
/// time. Ascending order makes each 4-lane <=-mask a run of ones followed
/// by zeros, so countr_one gives the exact advance when the run breaks.
inline std::size_t advance_le(const double* a, std::size_t i, std::size_t limit,
                              double q) noexcept {
  const __m256d qv = _mm256_set1_pd(q);
  while (i + 4 <= limit) {
    const __m256d v = _mm256_loadu_pd(a + i);
    const auto le =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_cmp_pd(v, qv, _CMP_LE_OQ)));
    if (le == 0xFu) {
      i += 4;
      continue;
    }
    return i + std::countr_one(le);  // a[result] > q
  }
  while (i < limit && a[i] <= q) ++i;
  return i;
}

/// Branchless upper bound (conditional-move binary search) for sparse
/// queries against large arenas.
inline std::uint32_t upper_bound_branchless(const double* a, std::size_t n,
                                            double q) noexcept {
  if (n == 0) return 0;
  const double* base = a;
  while (n > 1) {
    const std::size_t half = n / 2;
    base += (base[half - 1] <= q) ? half : 0;
    n -= half;
  }
  return static_cast<std::uint32_t>((base - a) + (*base <= q ? 1 : 0));
}

void rank_sorted_avx2(std::span<const double> arena, std::span<const double> xs,
                      double shift, std::uint32_t* out) {
  const double* a = arena.data();
  const std::size_t n = arena.size();
  if (detail::sweep_prefers_binary(n, xs.size())) {
    for (std::size_t j = 0; j < xs.size(); ++j) {
      out[j] = upper_bound_branchless(a, n, xs[j] - shift);
    }
    return;
  }
  std::size_t i = 0;
  for (std::size_t j = 0; j < xs.size(); ++j) {
    i = advance_le(a, i, n, xs[j] - shift);
    out[j] = static_cast<std::uint32_t>(i);
  }
}

/// Partition count: #{v <= q} by accumulating 4-lane compare masks (each
/// all-ones lane is -1 as int64, so mask subtraction counts).
inline std::uint32_t partition_count_le(const double* a, std::size_t n,
                                        double q) noexcept {
  const __m256d qv = _mm256_set1_pd(q);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(a + i);
    acc = _mm256_sub_epi64(acc, _mm256_castpd_si256(_mm256_cmp_pd(v, qv, _CMP_LE_OQ)));
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int64_t count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) count += a[i] <= q ? 1 : 0;
  return static_cast<std::uint32_t>(count);
}

void rank_unsorted_avx2(std::span<const double> arena, std::span<const double> xs,
                        double shift, std::uint32_t* out) {
  const double* a = arena.data();
  const std::size_t n = arena.size();
  // Tiny arenas: the branchless streaming count (n/4 independent vector
  // compares) beats ~log2(n) dependent loads. Anywhere past ~2 cache lines
  // per lane the binary search wins.
  constexpr std::size_t kPartitionCountMax = 96;
  if (n <= kPartitionCountMax) {
    for (std::size_t j = 0; j < xs.size(); ++j) {
      out[j] = partition_count_le(a, n, xs[j] - shift);
    }
  } else {
    for (std::size_t j = 0; j < xs.size(); ++j) {
      out[j] = upper_bound_branchless(a, n, xs[j] - shift);
    }
  }
}

void rank_grid_avx2(std::span<const double> arena, std::span<const double> thresholds,
                    std::span<const double> sizes, std::uint32_t* ranks) {
  const std::size_t n = arena.size();
  const std::size_t T = thresholds.size();
  const std::size_t S = sizes.size();
  if (T == 0 || S == 0) return;
  if (n == 0) {
    std::fill(ranks, ranks + T * S, 0u);
    return;
  }
  const double* a = arena.data();
  if (detail::sweep_prefers_binary(n, T)) {
    // Sparse grid over a large (pooled) arena: S*T binary searches touch
    // far fewer samples than S merge-scans of the whole arena.
    for (std::size_t s = 0; s < S; ++s) {
      const double shift = sizes[s];
      std::uint32_t* row = ranks + s * T;
      for (std::size_t j = 0; j < T; ++j) {
        row[j] = upper_bound_branchless(a, n, thresholds[j] - shift);
      }
    }
    return;
  }
  // One tiled pass: walk the arena in L1-resident tiles and run every
  // size's merge-scan segment over the tile before moving on, so the arena
  // is streamed from memory once instead of once per attack size.
  constexpr std::size_t kTile = 4096;  // 32 KiB of samples
  thread_local std::vector<std::size_t> arena_cursor, query_cursor;
  arena_cursor.assign(S, 0);
  query_cursor.assign(S, 0);
  for (std::size_t lo = 0; lo < n; lo += kTile) {
    const std::size_t hi = std::min(n, lo + kTile);
    const bool last_tile = hi == n;
    for (std::size_t s = 0; s < S; ++s) {
      std::size_t j = query_cursor[s];
      if (j >= T) continue;
      std::size_t i = arena_cursor[s];
      const double shift = sizes[s];
      std::uint32_t* row = ranks + s * T;
      while (j < T) {
        i = advance_le(a, i, hi, thresholds[j] - shift);
        if (i == hi && !last_tile) break;  // query reaches into the next tile
        row[j] = static_cast<std::uint32_t>(i);
        ++j;
      }
      arena_cursor[s] = i;
      query_cursor[s] = j;
    }
  }
}

std::uint64_t count_exceed_avx2(std::span<const double> values, double threshold) {
  const double* a = values.data();
  const std::size_t n = values.size();
  const __m256d tv = _mm256_set1_pd(threshold);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(a + i);
    acc = _mm256_sub_epi64(acc, _mm256_castpd_si256(_mm256_cmp_pd(v, tv, _CMP_GT_OQ)));
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t count = static_cast<std::uint64_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) count += a[i] > threshold ? 1 : 0;
  return count;
}

void replay_detect_avx2(std::span<const double> benign, std::span<const double> attack,
                        double threshold, std::uint64_t& benign_alarms,
                        std::uint64_t& attacked_bins, std::uint64_t& detected) {
  const double* b = benign.data();
  const double* at = attack.data();
  const std::size_t n = benign.size();
  const __m256d tv = _mm256_set1_pd(threshold);
  const __m256d zero = _mm256_setzero_pd();
  __m256i acc_alarm = _mm256_setzero_si256();
  __m256i acc_attacked = _mm256_setzero_si256();
  __m256i acc_hit = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d bv = _mm256_loadu_pd(b + i);
    const __m256d av = _mm256_loadu_pd(at + i);
    const __m256d m_alarm = _mm256_cmp_pd(bv, tv, _CMP_GT_OQ);
    const __m256d m_attacked = _mm256_cmp_pd(av, zero, _CMP_GT_OQ);
    const __m256d m_hit =
        _mm256_and_pd(_mm256_cmp_pd(_mm256_add_pd(bv, av), tv, _CMP_GT_OQ), m_attacked);
    acc_alarm = _mm256_sub_epi64(acc_alarm, _mm256_castpd_si256(m_alarm));
    acc_attacked = _mm256_sub_epi64(acc_attacked, _mm256_castpd_si256(m_attacked));
    acc_hit = _mm256_sub_epi64(acc_hit, _mm256_castpd_si256(m_hit));
  }
  alignas(32) std::int64_t lanes[4];
  const auto reduce = [&lanes](__m256i acc) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    return static_cast<std::uint64_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  };
  std::uint64_t alarms = reduce(acc_alarm);
  std::uint64_t attacked = reduce(acc_attacked);
  std::uint64_t hits = reduce(acc_hit);
  for (; i < n; ++i) {
    if (b[i] > threshold) ++alarms;
    if (at[i] > 0.0) {
      ++attacked;
      if (b[i] + at[i] > threshold) ++hits;
    }
  }
  benign_alarms = alarms;
  attacked_bins = attacked;
  detected = hits;
}

void joint_exceed_avx2(const std::span<const double>* slices, const double* thresholds,
                       std::size_t feature_count, std::size_t bins,
                       std::uint64_t* marginal, std::uint64_t& joint) {
  for (std::size_t f = 0; f < feature_count; ++f) marginal[f] = 0;
  std::uint64_t any_count = 0;
  std::size_t b = 0;
  for (; b + 4 <= bins; b += 4) {
    __m256d any = _mm256_setzero_pd();
    for (std::size_t f = 0; f < feature_count; ++f) {
      const __m256d v = _mm256_loadu_pd(slices[f].data() + b);
      const __m256d m = _mm256_cmp_pd(v, _mm256_set1_pd(thresholds[f]), _CMP_GT_OQ);
      marginal[f] += static_cast<unsigned>(std::popcount(
          static_cast<unsigned>(_mm256_movemask_pd(m))));
      any = _mm256_or_pd(any, m);
    }
    any_count += static_cast<unsigned>(
        std::popcount(static_cast<unsigned>(_mm256_movemask_pd(any))));
  }
  for (; b < bins; ++b) {
    bool any = false;
    for (std::size_t f = 0; f < feature_count; ++f) {
      if (slices[f][b] > thresholds[f]) {
        ++marginal[f];
        any = true;
      }
    }
    if (any) ++any_count;
  }
  joint = any_count;
}

/// One pass of G independent 4-block Philox groups: each 64-bit lane of a
/// ymm register carries one block's 32-bit state word zero-extended to 64
/// bits, so _mm256_mul_epu32 computes the four full 32x32 -> 64 products
/// of a round in one instruction. All arithmetic is integer and
/// lane-independent, so the words match util::Philox4x32::fill_blocks bit
/// for bit. Writes 16 * G words at out.
template <int G>
inline void philox_pass_avx2(std::uint64_t key, __m256i c2_init, __m256i c3_init,
                             std::uint64_t first_index, std::uint32_t* out) noexcept {
  constexpr std::uint32_t kM0 = 0xD2511F53u;
  constexpr std::uint32_t kM1 = 0xCD9E8D57u;
  constexpr std::uint32_t kW0 = 0x9E3779B9u;
  constexpr std::uint32_t kW1 = 0xBB67AE85u;
  const __m256i m0 = _mm256_set1_epi64x(kM0);
  const __m256i m1 = _mm256_set1_epi64x(kM1);
  const __m256i lo32 = _mm256_set1_epi64x(0xFFFFFFFFll);

  __m256i c0[G], c1[G], c2[G], c3[G];
  for (int g = 0; g < G; ++g) {
    // Block indices first_index + 4g + {0,1,2,3} as 64-bit lanes; the
    // counter's low/high words are the index's split halves.
    const __m256i blk =
        _mm256_add_epi64(_mm256_set1_epi64x(static_cast<long long>(first_index + 4 * g)),
                         _mm256_set_epi64x(3, 2, 1, 0));
    c0[g] = _mm256_and_si256(blk, lo32);
    c1[g] = _mm256_srli_epi64(blk, 32);
    c2[g] = c2_init;
    c3[g] = c3_init;
  }
  __m256i k0 = _mm256_set1_epi64x(static_cast<long long>(key) & 0xFFFFFFFFll);
  __m256i k1 = _mm256_set1_epi64x(static_cast<long long>(key >> 32) & 0xFFFFFFFFll);
  for (int r = 0; r < 10; ++r) {
    for (int g = 0; g < G; ++g) {
      const __m256i p0 = _mm256_mul_epu32(c0[g], m0);
      const __m256i p1 = _mm256_mul_epu32(c2[g], m1);
      c0[g] = _mm256_xor_si256(_mm256_xor_si256(_mm256_srli_epi64(p1, 32), c1[g]), k0);
      c1[g] = _mm256_and_si256(p1, lo32);
      c2[g] = _mm256_xor_si256(_mm256_xor_si256(_mm256_srli_epi64(p0, 32), c3[g]), k1);
      c3[g] = _mm256_and_si256(p0, lo32);
    }
    k0 = _mm256_and_si256(_mm256_add_epi64(k0, _mm256_set1_epi64x(kW0)), lo32);
    k1 = _mm256_and_si256(_mm256_add_epi64(k1, _mm256_set1_epi64x(kW1)), lo32);
  }
  // Transpose lanes to block-major output: block i's words are lane i of
  // (c0, c1, c2, c3), each a 32-bit value sitting in the low half of a
  // 64-bit lane. shuffle_ps(a, b, 0x88) packs the even dwords of each
  // 128-bit half, giving [b0wA b1wA b0wB b1wB | b2wA b3wA b2wB b3wB];
  // two rounds of 32-bit unpacks then gather each block's four words
  // into one 128-bit half, and a cross-lane permute orders the blocks —
  // 8 shuffles + 2 stores per group instead of 16 scalar stores.
  for (int g = 0; g < G; ++g) {
    const __m256i w01 =
        _mm256_castps_si256(_mm256_shuffle_ps(_mm256_castsi256_ps(c0[g]),
                                              _mm256_castsi256_ps(c1[g]), 0x88));
    const __m256i w23 =
        _mm256_castps_si256(_mm256_shuffle_ps(_mm256_castsi256_ps(c2[g]),
                                              _mm256_castsi256_ps(c3[g]), 0x88));
    // w01: [b0w0 b1w0 b0w1 b1w1 | b2w0 b3w0 b2w1 b3w1], w23 same for w2/w3.
    const __m256i lo = _mm256_unpacklo_epi32(w01, w23);  // b0w0 b0w2 b1w0 b1w2 | b2...
    const __m256i hi = _mm256_unpackhi_epi32(w01, w23);  // b0w1 b0w3 b1w1 b1w3 | b2...
    const __m256i blk02 = _mm256_unpacklo_epi32(lo, hi);  // [b0 row | b2 row]
    const __m256i blk13 = _mm256_unpackhi_epi32(lo, hi);  // [b1 row | b3 row]
    std::uint32_t* o = out + 16 * g;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o),
                        _mm256_permute2x128_si256(blk02, blk13, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + 8),
                        _mm256_permute2x128_si256(blk02, blk13, 0x31));
  }
}

void philox_fill_avx2(std::uint64_t key, std::uint64_t stream,
                      std::uint64_t first_block, std::uint32_t* out,
                      std::size_t blocks) {
  const __m256i lo32 = _mm256_set1_epi64x(0xFFFFFFFFll);
  const __m256i c2_init = _mm256_set1_epi64x(static_cast<long long>(stream) & 0xFFFFFFFFll);
  const __m256i c3_init =
      _mm256_set1_epi64x(static_cast<long long>(stream >> 32) & 0xFFFFFFFFll);
  (void)lo32;

  // Two independent 4-block groups per pass (8 blocks, 32 words): the
  // per-round multiply latency chain is ~10 * 5 cycles per group, so a
  // second group in flight roughly doubles throughput without spilling
  // (2 groups x 4 state + 2 keys + 3 constants fits the 16 ymm registers).
  // A single-group pass mops up a 4..7-block remainder so the scalar tail
  // only ever sees < 4 blocks — the trace cursor's whole-group fills
  // (multiples of 4 blocks) never leave the vector path.
  std::size_t b = 0;
  for (; b + 8 <= blocks; b += 8) {
    philox_pass_avx2<2>(key, c2_init, c3_init, first_block + b, out + b * 4);
  }
  if (b + 4 <= blocks) {
    philox_pass_avx2<1>(key, c2_init, c3_init, first_block + b, out + b * 4);
    b += 4;
  }
  if (b < blocks) {
    util::Philox4x32::fill_blocks(key, stream, first_block + b, out + b * 4, blocks - b);
  }
}

std::uint64_t poisson_counts_avx2(const double* means, const std::uint32_t* words,
                                  std::uint32_t* counts, std::size_t n) {
  // Four-lane mirror of detail::poisson_counts_portable's inversion
  // regime: the exp_neg12 fma chain lane-wise (_mm256_fmadd_pd is the
  // same correctly-rounded fused op as std::fma), then the Knuth walk
  // with the identical per-step mul/add sequence. Quads containing a
  // normal-regime mean (>= kNormalCutoff32, rare by construction of the
  // traffic model) fall through to the portable code so those lanes never
  // diverge. This TU is compiled with -ffp-contract=off, so no mul/add
  // pair here can silently fuse differently than the scalar reference.
  const __m256d cutoff = _mm256_set1_pd(batch::kNormalCutoff32);
  const __m256d sign = _mm256_set1_pd(-0.0);
  const __m256d log2e = _mm256_set1_pd(1.4426950408889634);
  const __m256d ln2hi = _mm256_set1_pd(6.93147180369123816490e-01);
  const __m256d ln2lo = _mm256_set1_pd(1.90821492927058770002e-10);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256i mant_hide = _mm256_set1_epi64x(0x4330000000000000ll);
  const __m256d two52 = _mm256_set1_pd(0x1.0p52);
  const __m256d scale32 = _mm256_set1_pd(0x1.0p-32);

  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d m = _mm256_loadu_pd(means + i);
    // Normal-regime lanes are masked out of the walk (their cum is pinned
    // above every u) and resolved scalar afterwards — the quad stays on
    // the vector path, so a single heavy lane never drags its three
    // inversion-regime neighbours through the slow portable fallback.
    const __m256d heavy = _mm256_cmp_pd(m, cutoff, _CMP_GE_OQ);
    const int heavy_mask = _mm256_movemask_pd(heavy);
    // u = w * 2^-32 exactly (mantissa-hiding u32 -> f64 convert).
    const __m128i w32 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(words + i));
    const __m256d wd = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(_mm256_cvtepu32_epi64(w32), mant_hide)),
        two52);
    const __m256d u = _mm256_mul_pd(wd, scale32);
    // Per-lane zero-draw shortcut (see poisson_counts_portable): a lane
    // with u + mean <= 1 resolves to 0 before any exp. Shortcut lanes are
    // dead in the walk exactly like heavy lanes, so quad composition (and
    // therefore tile partitioning) never changes a lane's result. When the
    // whole quad is dead — the common idle stretch — the exp and the walk
    // are skipped outright.
    const __m256d dead = _mm256_or_pd(
        heavy, _mm256_cmp_pd(_mm256_add_pd(u, m), one, _CMP_LE_OQ));
    alignas(32) std::uint64_t kv[4] = {0, 0, 0, 0};
    if (_mm256_movemask_pd(dead) != 0xF) {
      // limit = exp_neg12(m), lane-wise.
      const __m256d x = _mm256_xor_pd(m, sign);
      const __m256d kd = _mm256_floor_pd(_mm256_fmadd_pd(x, log2e, half));
      const __m256d nkd = _mm256_xor_pd(kd, sign);
      __m256d r = _mm256_fmadd_pd(nkd, ln2hi, x);
      r = _mm256_fmadd_pd(nkd, ln2lo, r);
      __m256d p = _mm256_set1_pd(1.0 / 5040.0);
      p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 720.0));
      p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 120.0));
      p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 24.0));
      p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 6.0));
      p = _mm256_fmadd_pd(p, r, half);
      p = _mm256_fmadd_pd(p, r, one);
      p = _mm256_fmadd_pd(p, r, one);
      const __m256i bits = _mm256_slli_epi64(
          _mm256_add_epi64(_mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(kd)),
                           _mm256_set1_epi64x(1023)),
          52);
      const __m256d limit = _mm256_mul_pd(p, _mm256_castsi256_pd(bits));
      // The walk: k counts the steps where the lane still has u > cum.
      // Dead lanes start with cum = 2 > any u, so they never step (and
      // whatever garbage a heavy lane's out-of-domain limit holds stays
      // inert in its own lane).
      __m256d pk = limit, cum = _mm256_blendv_pd(limit, _mm256_set1_pd(2.0), dead);
      __m256i k = _mm256_setzero_si256();
      for (std::size_t kk = 1; kk < batch::kInvKSize; ++kk) {
        const __m256d alive = _mm256_cmp_pd(u, cum, _CMP_GT_OQ);
        if (_mm256_movemask_pd(alive) == 0) break;
        k = _mm256_sub_epi64(k, _mm256_castpd_si256(alive));  // mask is -1 per lane
        pk = _mm256_mul_pd(pk, _mm256_mul_pd(m, _mm256_set1_pd(batch::kInvK[kk])));
        cum = _mm256_add_pd(cum, pk);
      }
      _mm256_store_si256(reinterpret_cast<__m256i*>(kv), k);
    }
    if (heavy_mask != 0) [[unlikely]] {
      for (int j = 0; j < 4; ++j) {
        if ((heavy_mask >> j) & 1) {
          kv[j] = batch::poisson_normal_word32(words[i + j], means[i + j]);
        }
      }
    }
    for (int j = 0; j < 4; ++j) {
      counts[i + j] = static_cast<std::uint32_t>(kv[j]);
      total += kv[j];
    }
  }
  if (i < n) total += detail::poisson_counts_portable(means + i, words + i, counts + i, n - i);
  return total;
}

void widen_u32_avx2(std::span<const std::uint32_t> values, double* out) {
  // Staging tallies are < 2^31 (the op's contract), so the signed 32->64
  // float convert is the exact unsigned conversion.
  const std::uint32_t* v = values.data();
  const std::size_t n = values.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i lanes = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    _mm256_storeu_pd(out + i, _mm256_cvtepi32_pd(lanes));
  }
  for (; i < n; ++i) out[i] = static_cast<double>(v[i]);
}

}  // namespace

namespace detail {

const Ops* avx2_ops() noexcept {
  static const Ops ops = {
      "avx2",            rank_sorted_avx2,  rank_unsorted_avx2, rank_grid_avx2,
      count_exceed_avx2, replay_detect_avx2, joint_exceed_avx2, widen_u32_avx2,
      philox_fill_avx2,  poisson_counts_avx2,
  };
  return &ops;
}

}  // namespace detail
}  // namespace monohids::stats::kernels

#else  // AVX2 not available in this build

namespace monohids::stats::kernels::detail {
const Ops* avx2_ops() noexcept { return nullptr; }
}  // namespace monohids::stats::kernels::detail

#endif
