// AVX2 back-end. This translation unit is compiled with -mavx2 (see
// src/stats/CMakeLists.txt); its functions are only ever reached through
// the dispatch table after a runtime cpuid check, so the binary stays safe
// on pre-AVX2 hardware.
//
// Exactness: every function here computes integer ranks/counts from IEEE
// comparisons (and one vector add in replay_detect whose lanes are the
// exact scalar additions), so results are bit-identical to the scalar
// back-end by construction — no reassociated floating-point reductions.
#include "stats/kernels.hpp"

#if defined(__x86_64__) && defined(MONOHIDS_COMPILE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>

namespace monohids::stats::kernels {
namespace {

/// Advances `i` over ascending a[i..limit) while a[i] <= q, four lanes at a
/// time. Ascending order makes each 4-lane <=-mask a run of ones followed
/// by zeros, so countr_one gives the exact advance when the run breaks.
inline std::size_t advance_le(const double* a, std::size_t i, std::size_t limit,
                              double q) noexcept {
  const __m256d qv = _mm256_set1_pd(q);
  while (i + 4 <= limit) {
    const __m256d v = _mm256_loadu_pd(a + i);
    const auto le =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_cmp_pd(v, qv, _CMP_LE_OQ)));
    if (le == 0xFu) {
      i += 4;
      continue;
    }
    return i + std::countr_one(le);  // a[result] > q
  }
  while (i < limit && a[i] <= q) ++i;
  return i;
}

/// Branchless upper bound (conditional-move binary search) for sparse
/// queries against large arenas.
inline std::uint32_t upper_bound_branchless(const double* a, std::size_t n,
                                            double q) noexcept {
  if (n == 0) return 0;
  const double* base = a;
  while (n > 1) {
    const std::size_t half = n / 2;
    base += (base[half - 1] <= q) ? half : 0;
    n -= half;
  }
  return static_cast<std::uint32_t>((base - a) + (*base <= q ? 1 : 0));
}

void rank_sorted_avx2(std::span<const double> arena, std::span<const double> xs,
                      double shift, std::uint32_t* out) {
  const double* a = arena.data();
  const std::size_t n = arena.size();
  if (detail::sweep_prefers_binary(n, xs.size())) {
    for (std::size_t j = 0; j < xs.size(); ++j) {
      out[j] = upper_bound_branchless(a, n, xs[j] - shift);
    }
    return;
  }
  std::size_t i = 0;
  for (std::size_t j = 0; j < xs.size(); ++j) {
    i = advance_le(a, i, n, xs[j] - shift);
    out[j] = static_cast<std::uint32_t>(i);
  }
}

/// Partition count: #{v <= q} by accumulating 4-lane compare masks (each
/// all-ones lane is -1 as int64, so mask subtraction counts).
inline std::uint32_t partition_count_le(const double* a, std::size_t n,
                                        double q) noexcept {
  const __m256d qv = _mm256_set1_pd(q);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(a + i);
    acc = _mm256_sub_epi64(acc, _mm256_castpd_si256(_mm256_cmp_pd(v, qv, _CMP_LE_OQ)));
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int64_t count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) count += a[i] <= q ? 1 : 0;
  return static_cast<std::uint32_t>(count);
}

void rank_unsorted_avx2(std::span<const double> arena, std::span<const double> xs,
                        double shift, std::uint32_t* out) {
  const double* a = arena.data();
  const std::size_t n = arena.size();
  // Tiny arenas: the branchless streaming count (n/4 independent vector
  // compares) beats ~log2(n) dependent loads. Anywhere past ~2 cache lines
  // per lane the binary search wins.
  constexpr std::size_t kPartitionCountMax = 96;
  if (n <= kPartitionCountMax) {
    for (std::size_t j = 0; j < xs.size(); ++j) {
      out[j] = partition_count_le(a, n, xs[j] - shift);
    }
  } else {
    for (std::size_t j = 0; j < xs.size(); ++j) {
      out[j] = upper_bound_branchless(a, n, xs[j] - shift);
    }
  }
}

void rank_grid_avx2(std::span<const double> arena, std::span<const double> thresholds,
                    std::span<const double> sizes, std::uint32_t* ranks) {
  const std::size_t n = arena.size();
  const std::size_t T = thresholds.size();
  const std::size_t S = sizes.size();
  if (T == 0 || S == 0) return;
  if (n == 0) {
    std::fill(ranks, ranks + T * S, 0u);
    return;
  }
  const double* a = arena.data();
  if (detail::sweep_prefers_binary(n, T)) {
    // Sparse grid over a large (pooled) arena: S*T binary searches touch
    // far fewer samples than S merge-scans of the whole arena.
    for (std::size_t s = 0; s < S; ++s) {
      const double shift = sizes[s];
      std::uint32_t* row = ranks + s * T;
      for (std::size_t j = 0; j < T; ++j) {
        row[j] = upper_bound_branchless(a, n, thresholds[j] - shift);
      }
    }
    return;
  }
  // One tiled pass: walk the arena in L1-resident tiles and run every
  // size's merge-scan segment over the tile before moving on, so the arena
  // is streamed from memory once instead of once per attack size.
  constexpr std::size_t kTile = 4096;  // 32 KiB of samples
  thread_local std::vector<std::size_t> arena_cursor, query_cursor;
  arena_cursor.assign(S, 0);
  query_cursor.assign(S, 0);
  for (std::size_t lo = 0; lo < n; lo += kTile) {
    const std::size_t hi = std::min(n, lo + kTile);
    const bool last_tile = hi == n;
    for (std::size_t s = 0; s < S; ++s) {
      std::size_t j = query_cursor[s];
      if (j >= T) continue;
      std::size_t i = arena_cursor[s];
      const double shift = sizes[s];
      std::uint32_t* row = ranks + s * T;
      while (j < T) {
        i = advance_le(a, i, hi, thresholds[j] - shift);
        if (i == hi && !last_tile) break;  // query reaches into the next tile
        row[j] = static_cast<std::uint32_t>(i);
        ++j;
      }
      arena_cursor[s] = i;
      query_cursor[s] = j;
    }
  }
}

std::uint64_t count_exceed_avx2(std::span<const double> values, double threshold) {
  const double* a = values.data();
  const std::size_t n = values.size();
  const __m256d tv = _mm256_set1_pd(threshold);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(a + i);
    acc = _mm256_sub_epi64(acc, _mm256_castpd_si256(_mm256_cmp_pd(v, tv, _CMP_GT_OQ)));
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t count = static_cast<std::uint64_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) count += a[i] > threshold ? 1 : 0;
  return count;
}

void replay_detect_avx2(std::span<const double> benign, std::span<const double> attack,
                        double threshold, std::uint64_t& benign_alarms,
                        std::uint64_t& attacked_bins, std::uint64_t& detected) {
  const double* b = benign.data();
  const double* at = attack.data();
  const std::size_t n = benign.size();
  const __m256d tv = _mm256_set1_pd(threshold);
  const __m256d zero = _mm256_setzero_pd();
  __m256i acc_alarm = _mm256_setzero_si256();
  __m256i acc_attacked = _mm256_setzero_si256();
  __m256i acc_hit = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d bv = _mm256_loadu_pd(b + i);
    const __m256d av = _mm256_loadu_pd(at + i);
    const __m256d m_alarm = _mm256_cmp_pd(bv, tv, _CMP_GT_OQ);
    const __m256d m_attacked = _mm256_cmp_pd(av, zero, _CMP_GT_OQ);
    const __m256d m_hit =
        _mm256_and_pd(_mm256_cmp_pd(_mm256_add_pd(bv, av), tv, _CMP_GT_OQ), m_attacked);
    acc_alarm = _mm256_sub_epi64(acc_alarm, _mm256_castpd_si256(m_alarm));
    acc_attacked = _mm256_sub_epi64(acc_attacked, _mm256_castpd_si256(m_attacked));
    acc_hit = _mm256_sub_epi64(acc_hit, _mm256_castpd_si256(m_hit));
  }
  alignas(32) std::int64_t lanes[4];
  const auto reduce = [&lanes](__m256i acc) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    return static_cast<std::uint64_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  };
  std::uint64_t alarms = reduce(acc_alarm);
  std::uint64_t attacked = reduce(acc_attacked);
  std::uint64_t hits = reduce(acc_hit);
  for (; i < n; ++i) {
    if (b[i] > threshold) ++alarms;
    if (at[i] > 0.0) {
      ++attacked;
      if (b[i] + at[i] > threshold) ++hits;
    }
  }
  benign_alarms = alarms;
  attacked_bins = attacked;
  detected = hits;
}

void joint_exceed_avx2(const std::span<const double>* slices, const double* thresholds,
                       std::size_t feature_count, std::size_t bins,
                       std::uint64_t* marginal, std::uint64_t& joint) {
  for (std::size_t f = 0; f < feature_count; ++f) marginal[f] = 0;
  std::uint64_t any_count = 0;
  std::size_t b = 0;
  for (; b + 4 <= bins; b += 4) {
    __m256d any = _mm256_setzero_pd();
    for (std::size_t f = 0; f < feature_count; ++f) {
      const __m256d v = _mm256_loadu_pd(slices[f].data() + b);
      const __m256d m = _mm256_cmp_pd(v, _mm256_set1_pd(thresholds[f]), _CMP_GT_OQ);
      marginal[f] += static_cast<unsigned>(std::popcount(
          static_cast<unsigned>(_mm256_movemask_pd(m))));
      any = _mm256_or_pd(any, m);
    }
    any_count += static_cast<unsigned>(
        std::popcount(static_cast<unsigned>(_mm256_movemask_pd(any))));
  }
  for (; b < bins; ++b) {
    bool any = false;
    for (std::size_t f = 0; f < feature_count; ++f) {
      if (slices[f][b] > thresholds[f]) {
        ++marginal[f];
        any = true;
      }
    }
    if (any) ++any_count;
  }
  joint = any_count;
}

void widen_u32_avx2(std::span<const std::uint32_t> values, double* out) {
  // Staging tallies are < 2^31 (the op's contract), so the signed 32->64
  // float convert is the exact unsigned conversion.
  const std::uint32_t* v = values.data();
  const std::size_t n = values.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i lanes = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    _mm256_storeu_pd(out + i, _mm256_cvtepi32_pd(lanes));
  }
  for (; i < n; ++i) out[i] = static_cast<double>(v[i]);
}

}  // namespace

namespace detail {

const Ops* avx2_ops() noexcept {
  static const Ops ops = {
      "avx2",            rank_sorted_avx2,  rank_unsorted_avx2, rank_grid_avx2,
      count_exceed_avx2, replay_detect_avx2, joint_exceed_avx2, widen_u32_avx2,
  };
  return &ops;
}

}  // namespace detail
}  // namespace monohids::stats::kernels

#else  // AVX2 not available in this build

namespace monohids::stats::kernels::detail {
const Ops* avx2_ops() noexcept { return nullptr; }
}  // namespace monohids::stats::kernels::detail

#endif
