// Histograms over feature values.
//
// Two flavors: fixed-width linear bins (for bounded features) and
// logarithmic bins (for the heavy-tailed bin-count distributions this study
// revolves around, where values span 3-4 decades). The resourceful attacker
// in the paper "computes histograms of the user's behavior"; the mimicry
// model consumes this type.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace monohids::stats {

/// Fixed-width linear histogram over [lo, hi); values outside the range are
/// counted in underflow/overflow.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double value, std::uint64_t count = 1);

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count_at(std::size_t bin) const;
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// [low, high) edges of a bin.
  [[nodiscard]] std::pair<double, double> bin_edges(std::size_t bin) const;

  /// Bin index for a value inside [lo, hi).
  [[nodiscard]] std::size_t bin_of(double value) const;

  /// Approximate quantile from bin mass (linear within the bin). Underflow
  /// mass is attributed to `lo`, overflow to `hi`.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Log-spaced histogram over [lo, hi) with `bins_per_decade` bins per factor
/// of 10; values <= 0 are counted separately (bin counts of 0 are common in
/// idle periods).
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t bins_per_decade);

  void add(double value, std::uint64_t count = 1);

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count_at(std::size_t bin) const;
  [[nodiscard]] std::uint64_t zero_or_negative() const noexcept { return nonpositive_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::pair<double, double> bin_edges(std::size_t bin) const;

  /// Approximate quantile; non-positive mass maps to 0, overflow to `hi`.
  [[nodiscard]] double quantile(double q) const;

 private:
  double log_lo_, log_hi_, log_width_;
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t nonpositive_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace monohids::stats
