#include "stats/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace monohids::stats {

double quantile_nearest_rank_sorted(std::span<const double> sorted, double q) {
  MONOHIDS_EXPECT(!sorted.empty(), "quantile of an empty sample");
  MONOHIDS_EXPECT(q >= 0.0 && q <= 1.0, "quantile probability must be in [0,1]");
  if (q == 0.0) return sorted.front();
  const auto n = sorted.size();
  const std::size_t rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  return sorted[std::min(rank, n) - 1];
}

double quantile_interpolated_sorted(std::span<const double> sorted, double q) {
  MONOHIDS_EXPECT(!sorted.empty(), "quantile of an empty sample");
  MONOHIDS_EXPECT(q >= 0.0 && q <= 1.0, "quantile probability must be in [0,1]");
  const auto n = sorted.size();
  if (n == 1) return sorted[0];
  const double h = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, n - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

namespace {
std::vector<double> sorted_copy(std::span<const double> samples) {
  std::vector<double> v(samples.begin(), samples.end());
  std::sort(v.begin(), v.end());
  return v;
}
}  // namespace

double quantile_nearest_rank(std::span<const double> samples, double q) {
  const auto v = sorted_copy(samples);
  return quantile_nearest_rank_sorted(v, q);
}

double quantile_interpolated(std::span<const double> samples, double q) {
  const auto v = sorted_copy(samples);
  return quantile_interpolated_sorted(v, q);
}

std::vector<double> quantiles_nearest_rank(std::span<const double> samples,
                                           std::span<const double> probabilities) {
  const auto v = sorted_copy(samples);
  std::vector<double> out;
  out.reserve(probabilities.size());
  for (double q : probabilities) out.push_back(quantile_nearest_rank_sorted(v, q));
  return out;
}

}  // namespace monohids::stats
