// P² streaming quantile estimator (Jain & Chlamtac, 1985).
//
// An end host that learns its own 99th-percentile threshold (the paper's
// full-diversity policy computes thresholds "all done locally") should not
// need to buffer a week of bin counts. P² tracks one quantile with five
// markers and O(1) update cost; accuracy is validated against exact
// quantiles in the test suite.
#pragma once

#include <array>
#include <cstdint>

namespace monohids::stats {

class P2Quantile {
 public:
  /// `probability` in (0, 1): the quantile to track (e.g. 0.99).
  explicit P2Quantile(double probability);

  void add(double value);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// Current estimate. Requires at least one observation; exact until five
  /// observations have been seen.
  [[nodiscard]] double value() const;

 private:
  void insert_sorted(double value);

  double p_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};          // marker heights q_i
  std::array<double, 5> positions_{};        // actual marker positions n_i
  std::array<double, 5> desired_{};          // desired positions n'_i
  std::array<double, 5> increments_{};       // dn'_i
};

}  // namespace monohids::stats
