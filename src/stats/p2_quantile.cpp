#include "stats/p2_quantile.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace monohids::stats {

P2Quantile::P2Quantile(double probability) : p_(probability) {
  MONOHIDS_EXPECT(probability > 0.0 && probability < 1.0,
                  "P2 probability must be in (0,1)");
  desired_ = {1.0, 1.0 + 2.0 * p_, 1.0 + 4.0 * p_, 3.0 + 2.0 * p_, 5.0};
  increments_ = {0.0, p_ / 2.0, p_, (1.0 + p_) / 2.0, 1.0};
}

void P2Quantile::insert_sorted(double value) {
  heights_[count_] = value;
  ++count_;
  if (count_ == 5) {
    std::sort(heights_.begin(), heights_.end());
    positions_ = {1, 2, 3, 4, 5};
  }
}

void P2Quantile::add(double value) {
  MONOHIDS_EXPECT(std::isfinite(value), "P2 values must be finite");
  if (count_ < 5) {
    insert_sorted(value);
    return;
  }

  // Locate the cell containing the new value and update extreme markers.
  std::size_t k;
  if (value < heights_[0]) {
    heights_[0] = value;
    k = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = std::max(heights_[4], value);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && value >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust the three interior markers toward their desired positions using
  // the piecewise-parabolic (P²) prediction, falling back to linear moves.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double gap_right = positions_[i + 1] - positions_[i];
    const double gap_left = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && gap_right > 1.0) || (d <= -1.0 && gap_left < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      const double np = positions_[i];
      const double np_l = positions_[i - 1];
      const double np_r = positions_[i + 1];
      const double q = heights_[i];
      const double q_l = heights_[i - 1];
      const double q_r = heights_[i + 1];
      // parabolic prediction
      double candidate =
          q + sign / (np_r - np_l) *
                  ((np - np_l + sign) * (q_r - q) / (np_r - np) +
                   (np_r - np - sign) * (q - q_l) / (np - np_l));
      if (candidate <= q_l || candidate >= q_r) {
        // linear fallback keeps markers strictly ordered
        candidate = q + sign * (sign > 0 ? (q_r - q) / (np_r - np) : (q_l - q) / (np_l - np));
      }
      heights_[i] = candidate;
      positions_[i] += sign;
    }
  }
  ++count_;
}

double P2Quantile::value() const {
  MONOHIDS_EXPECT(count_ > 0, "P2 estimate requires at least one observation");
  if (count_ < 5) {
    // exact small-sample quantile over the buffered values
    std::array<double, 5> buf = heights_;
    std::sort(buf.begin(), buf.begin() + count_);
    const auto rank = static_cast<std::size_t>(
        std::ceil(p_ * static_cast<double>(count_)));
    return buf[std::min(rank, static_cast<std::size_t>(count_)) - 1];
  }
  return heights_[2];
}

}  // namespace monohids::stats
