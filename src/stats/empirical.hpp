// Empirical distribution of a traffic feature.
//
// The paper treats each time-bin count as a sample of the per-host feature
// distribution P(g_i^j) and derives everything — thresholds, false-positive
// rates P(g > T), mimicry head-room — from the empirical CDF. This class is
// that CDF: it answers quantile / (c)CDF / convolution-style queries exactly
// over a sorted sample sequence.
//
// Ownership model: the sorted samples live in an immutable, shared arena
// (a reference-counted vector). Copying an EmpiricalDistribution copies a
// pointer + span, never the samples, so the same per-user distributions can
// be handed to many experiments zero-copy (the sim::AnalysisCache relies on
// this). Non-owning views over externally sorted buffers are available via
// view_of_sorted() for transient pooled distributions.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace monohids::stats {

class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;

  /// Builds from raw samples (moved into the arena and sorted). Samples
  /// must be finite.
  explicit EmpiricalDistribution(std::vector<double> samples);

  /// Builds from already-sorted samples without re-sorting (moved into the
  /// arena). The caller vouches for ascending order; debug builds assert it.
  [[nodiscard]] static EmpiricalDistribution from_sorted(std::vector<double> sorted);

  /// Non-owning view over an externally owned ascending buffer. The view
  /// answers every query of an owning distribution but holds no arena: it
  /// is valid only while `sorted` outlives it and is not reallocated or
  /// reordered. Used for scratch pooled distributions whose backing buffer
  /// is reused (see hids::assign_thresholds). Pass `with_rank_table` when
  /// the view is about to absorb a dense rank workload (threshold sweeps);
  /// the O(n + K) table build is amortized by O(1) lookups afterwards.
  [[nodiscard]] static EmpiricalDistribution view_of_sorted(std::span<const double> sorted,
                                                            bool with_rank_table = false);

  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  /// True when this instance (co-)owns its samples; false for views.
  [[nodiscard]] bool owns_samples() const noexcept { return storage_ != nullptr || sorted_.empty(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< population variance
  [[nodiscard]] double stddev() const;

  /// Sorted sample view (ascending).
  [[nodiscard]] std::span<const double> samples() const noexcept { return sorted_; }

  /// Nearest-rank quantile (see quantile.hpp). Distribution must be non-empty.
  [[nodiscard]] double quantile(double q) const;

  /// Linear-interpolation quantile.
  [[nodiscard]] double quantile_interpolated(double q) const;

  /// P(X <= x): fraction of samples <= x.
  [[nodiscard]] double cdf(double x) const;

  /// P(X > x): the false-positive rate of a detector thresholded at x.
  [[nodiscard]] double exceedance(double x) const;

  /// Batched cdf: out[j] = cdf(xs[j]) for the whole query batch at once.
  /// Answered by one merge-scan over the arena when `xs` is ascending
  /// (O(n + T) for a threshold sweep instead of O(T log n)) and by
  /// branchless vectorized rank queries otherwise (stats::kernels). The
  /// results are bit-identical to per-call cdf() on every SIMD back-end —
  /// ranks are exact integers and the rank/n division is the same operation
  /// the scalar path performs.
  void cdf_batch(std::span<const double> xs, std::span<double> out) const;

  /// Batched exceedance: out[j] = exceedance(xs[j]), same contract as
  /// cdf_batch (and the same 1.0 - cdf arithmetic as the per-call path).
  void exceedance_batch(std::span<const double> xs, std::span<double> out) const;

  /// Batched upper-bound ranks: out[j] = #samples <= xs[j], the integer
  /// primitive behind cdf_batch (exposed for consumers that post-process
  /// ranks themselves, e.g. AttackModel::mean_fn_batch).
  void rank_batch(std::span<const double> xs, std::span<std::uint32_t> out) const;

  /// Cumulative rank table cum[k] = #samples <= k, present when the samples
  /// are small integer counts (stats::kernels::build_rank_table) and the
  /// distribution was built with batching enabled; empty otherwise. Each
  /// rank query against it is one O(1) load with the same exact integer
  /// result as a binary search over the samples.
  [[nodiscard]] std::span<const std::uint32_t> rank_table() const noexcept {
    return rank_table_ != nullptr ? std::span<const std::uint32_t>(*rank_table_)
                                  : std::span<const std::uint32_t>{};
  }

  /// P(X + shift <= t): miss probability of an additive attack of size
  /// `shift` against threshold `t` (the paper's FN = P(g + b < T); with
  /// integer bin counts the <= / < distinction only matters at exact
  /// threshold values, where alarms fire strictly above T).
  [[nodiscard]] double shifted_cdf(double shift, double t) const;

  /// Largest additive shift b such that P(X + b <= t) >= target_mass, i.e.
  /// the mimicry attacker's maximal hidden traffic for evasion probability
  /// `target_mass` against threshold `t`. Returns 0 if even b = 0 fails.
  [[nodiscard]] double max_hidden_shift(double t, double target_mass) const;

  /// Merges several distributions into the pooled (global) distribution the
  /// paper's homogeneous policy builds at the central console. Implemented
  /// as a k-way merge of the parts' already-sorted samples (no re-sort).
  [[nodiscard]] static EmpiricalDistribution merge(
      std::span<const EmpiricalDistribution> parts);

 private:
  struct sorted_tag {};
  EmpiricalDistribution(std::vector<double> sorted, sorted_tag);

  void maybe_build_rank_table();

  std::shared_ptr<const std::vector<double>> storage_;  ///< arena (null for views)
  std::span<const double> sorted_;                      ///< ascending samples
  /// Shared like the arena: copies reuse one table. Null when the samples
  /// are not small integer counts or the table was never requested.
  std::shared_ptr<const std::vector<std::uint32_t>> rank_table_;
};

/// K-way merges ascending spans into `out` (cleared first, capacity reused
/// across calls). The result is the ascending multiset union of the parts —
/// element-for-element what sorting their concatenation produces.
void merge_sorted_spans(std::span<const std::span<const double>> parts,
                        std::vector<double>& out);

}  // namespace monohids::stats
