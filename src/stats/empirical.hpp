// Empirical distribution of a traffic feature.
//
// The paper treats each time-bin count as a sample of the per-host feature
// distribution P(g_i^j) and derives everything — thresholds, false-positive
// rates P(g > T), mimicry head-room — from the empirical CDF. This class is
// that CDF: it owns a sorted sample vector and answers quantile /
// (c)CDF / convolution-style queries exactly.
#pragma once

#include <span>
#include <vector>

namespace monohids::stats {

class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;

  /// Builds from raw samples (copied and sorted). Samples must be finite.
  explicit EmpiricalDistribution(std::vector<double> samples);

  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< population variance
  [[nodiscard]] double stddev() const;

  /// Sorted sample view (ascending).
  [[nodiscard]] std::span<const double> samples() const noexcept { return sorted_; }

  /// Nearest-rank quantile (see quantile.hpp). Distribution must be non-empty.
  [[nodiscard]] double quantile(double q) const;

  /// Linear-interpolation quantile.
  [[nodiscard]] double quantile_interpolated(double q) const;

  /// P(X <= x): fraction of samples <= x.
  [[nodiscard]] double cdf(double x) const;

  /// P(X > x): the false-positive rate of a detector thresholded at x.
  [[nodiscard]] double exceedance(double x) const;

  /// P(X + shift <= t): miss probability of an additive attack of size
  /// `shift` against threshold `t` (the paper's FN = P(g + b < T); with
  /// integer bin counts the <= / < distinction only matters at exact
  /// threshold values, where alarms fire strictly above T).
  [[nodiscard]] double shifted_cdf(double shift, double t) const;

  /// Largest additive shift b such that P(X + b <= t) >= target_mass, i.e.
  /// the mimicry attacker's maximal hidden traffic for evasion probability
  /// `target_mass` against threshold `t`. Returns 0 if even b = 0 fails.
  [[nodiscard]] double max_hidden_shift(double t, double target_mass) const;

  /// Merges several distributions into the pooled (global) distribution the
  /// paper's homogeneous policy builds at the central console.
  [[nodiscard]] static EmpiricalDistribution merge(
      std::span<const EmpiricalDistribution> parts);

 private:
  std::vector<double> sorted_;
};

}  // namespace monohids::stats
