// Exact quantile computation.
//
// The paper's threshold heuristics are defined on empirical percentiles
// (99th, 99.9th). Two estimators are provided:
//   - nearest-rank: the classical inverse-CDF definition used when a
//     threshold must be an actually-observed value, and
//   - linear interpolation (R-7 / NumPy default): used where a smooth value
//     is preferable (e.g. plotting).
#pragma once

#include <span>
#include <vector>

namespace monohids::stats {

/// Nearest-rank quantile: smallest sample value x such that at least
/// ceil(q * n) samples are <= x. `q` in [0, 1]; `sorted` must be ascending
/// and non-empty.
[[nodiscard]] double quantile_nearest_rank_sorted(std::span<const double> sorted, double q);

/// Linear-interpolation quantile (type 7). Same preconditions.
[[nodiscard]] double quantile_interpolated_sorted(std::span<const double> sorted, double q);

/// Convenience: copies, sorts, and applies nearest-rank.
[[nodiscard]] double quantile_nearest_rank(std::span<const double> samples, double q);

/// Convenience: copies, sorts, and applies interpolation.
[[nodiscard]] double quantile_interpolated(std::span<const double> samples, double q);

/// Batch: nearest-rank quantiles for many probabilities with a single sort.
[[nodiscard]] std::vector<double> quantiles_nearest_rank(std::span<const double> samples,
                                                         std::span<const double> probabilities);

}  // namespace monohids::stats
