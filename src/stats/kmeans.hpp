// k-means clustering (Lloyd's algorithm with k-means++ seeding).
//
// Section 5 of the paper attempts k-means over per-user 99th-percentile
// values to build partial-diversity groups and finds "no natural holes" in
// the population. We implement the same method plus the diagnostics
// (inertia, silhouette) that quantify that finding, and reuse it as an
// alternative grouper in the future-work ablation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace monohids::stats {

struct KMeansResult {
  std::vector<std::vector<double>> centroids;   // k centroids, each d-dimensional
  std::vector<std::uint32_t> assignment;        // point index -> cluster id
  double inertia = 0.0;                         // sum of squared distances to centroid
  std::uint32_t iterations = 0;
  bool converged = false;
};

struct KMeansOptions {
  std::uint32_t max_iterations = 100;
  double tolerance = 1e-9;  ///< stop when inertia improvement falls below this
};

/// Clusters `points` (each the same dimension, at least k points) into k
/// clusters. Deterministic given the RNG state.
[[nodiscard]] KMeansResult kmeans(std::span<const std::vector<double>> points, std::uint32_t k,
                                  util::Xoshiro256& rng, const KMeansOptions& options = {});

/// Mean silhouette coefficient in [-1, 1]; values near 0 indicate no natural
/// cluster separation (the paper's observation). Requires k >= 2 and every
/// cluster non-empty.
[[nodiscard]] double mean_silhouette(std::span<const std::vector<double>> points,
                                     std::span<const std::uint32_t> assignment, std::uint32_t k);

}  // namespace monohids::stats
