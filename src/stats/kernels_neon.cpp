// NEON back-end (aarch64). Mirrors the AVX2 back-end with 2-lane float64
// vectors; NEON is baseline on aarch64 so no runtime feature check is
// needed beyond the architecture itself. Same exactness argument as AVX2:
// integer ranks/counts only, no reassociated floating-point reductions.
#include "stats/kernels.hpp"
#include "util/rng.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <cstdint>
#include <span>

namespace monohids::stats::kernels {
namespace {

/// Advances `i` over ascending a[i..limit) while a[i] <= q, two lanes at a
/// time (mask lanes are all-ones/all-zero runs because the arena ascends).
inline std::size_t advance_le(const double* a, std::size_t i, std::size_t limit,
                              double q) noexcept {
  const float64x2_t qv = vdupq_n_f64(q);
  while (i + 2 <= limit) {
    const float64x2_t v = vld1q_f64(a + i);
    const uint64x2_t le = vcleq_f64(v, qv);
    const std::uint64_t lo = vgetq_lane_u64(le, 0);
    const std::uint64_t hi = vgetq_lane_u64(le, 1);
    if (lo != 0 && hi != 0) {
      i += 2;
      continue;
    }
    return i + (lo != 0 ? 1 : 0);  // ascending: hi set without lo cannot happen
  }
  while (i < limit && a[i] <= q) ++i;
  return i;
}

inline std::uint32_t upper_bound_branchless(const double* a, std::size_t n,
                                            double q) noexcept {
  if (n == 0) return 0;
  const double* base = a;
  while (n > 1) {
    const std::size_t half = n / 2;
    base += (base[half - 1] <= q) ? half : 0;
    n -= half;
  }
  return static_cast<std::uint32_t>((base - a) + (*base <= q ? 1 : 0));
}

void rank_sorted_neon(std::span<const double> arena, std::span<const double> xs,
                      double shift, std::uint32_t* out) {
  const double* a = arena.data();
  const std::size_t n = arena.size();
  if (detail::sweep_prefers_binary(n, xs.size())) {
    for (std::size_t j = 0; j < xs.size(); ++j) {
      out[j] = upper_bound_branchless(a, n, xs[j] - shift);
    }
    return;
  }
  std::size_t i = 0;
  for (std::size_t j = 0; j < xs.size(); ++j) {
    i = advance_le(a, i, n, xs[j] - shift);
    out[j] = static_cast<std::uint32_t>(i);
  }
}

/// Streaming partition count: lanes of vcleq are all-ones (=-1 as int64),
/// so subtracting the mask accumulates the count.
inline std::uint32_t partition_count_le(const double* a, std::size_t n,
                                        double q) noexcept {
  const float64x2_t qv = vdupq_n_f64(q);
  int64x2_t acc = vdupq_n_s64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(a + i);
    acc = vsubq_s64(acc, vreinterpretq_s64_u64(vcleq_f64(v, qv)));
  }
  std::int64_t count = vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1);
  for (; i < n; ++i) count += a[i] <= q ? 1 : 0;
  return static_cast<std::uint32_t>(count);
}

void rank_unsorted_neon(std::span<const double> arena, std::span<const double> xs,
                        double shift, std::uint32_t* out) {
  const double* a = arena.data();
  const std::size_t n = arena.size();
  // Tiny arenas only: past ~2 cache lines per lane the n/2 streaming
  // compares lose to ~log2(n) dependent loads.
  constexpr std::size_t kPartitionCountMax = 96;
  if (n <= kPartitionCountMax) {
    for (std::size_t j = 0; j < xs.size(); ++j) {
      out[j] = partition_count_le(a, n, xs[j] - shift);
    }
  } else {
    for (std::size_t j = 0; j < xs.size(); ++j) {
      out[j] = upper_bound_branchless(a, n, xs[j] - shift);
    }
  }
}

void rank_grid_neon(std::span<const double> arena, std::span<const double> thresholds,
                    std::span<const double> sizes, std::uint32_t* ranks) {
  const std::size_t n = arena.size();
  const std::size_t T = thresholds.size();
  const std::size_t S = sizes.size();
  if (T == 0 || S == 0) return;
  if (n == 0) {
    std::fill(ranks, ranks + T * S, 0u);
    return;
  }
  const double* a = arena.data();
  if (detail::sweep_prefers_binary(n, T)) {
    // Sparse grid over a large (pooled) arena: S*T binary searches touch
    // far fewer samples than S merge-scans of the whole arena.
    for (std::size_t s = 0; s < S; ++s) {
      const double shift = sizes[s];
      std::uint32_t* row = ranks + s * T;
      for (std::size_t j = 0; j < T; ++j) {
        row[j] = upper_bound_branchless(a, n, thresholds[j] - shift);
      }
    }
    return;
  }
  constexpr std::size_t kTile = 4096;  // 32 KiB of samples per tile
  thread_local std::vector<std::size_t> arena_cursor, query_cursor;
  arena_cursor.assign(S, 0);
  query_cursor.assign(S, 0);
  for (std::size_t lo = 0; lo < n; lo += kTile) {
    const std::size_t hi = std::min(n, lo + kTile);
    const bool last_tile = hi == n;
    for (std::size_t s = 0; s < S; ++s) {
      std::size_t j = query_cursor[s];
      if (j >= T) continue;
      std::size_t i = arena_cursor[s];
      const double shift = sizes[s];
      std::uint32_t* row = ranks + s * T;
      while (j < T) {
        i = advance_le(a, i, hi, thresholds[j] - shift);
        if (i == hi && !last_tile) break;
        row[j] = static_cast<std::uint32_t>(i);
        ++j;
      }
      arena_cursor[s] = i;
      query_cursor[s] = j;
    }
  }
}

std::uint64_t count_exceed_neon(std::span<const double> values, double threshold) {
  const double* a = values.data();
  const std::size_t n = values.size();
  const float64x2_t tv = vdupq_n_f64(threshold);
  int64x2_t acc = vdupq_n_s64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(a + i);
    acc = vsubq_s64(acc, vreinterpretq_s64_u64(vcgtq_f64(v, tv)));
  }
  std::uint64_t count =
      static_cast<std::uint64_t>(vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1));
  for (; i < n; ++i) count += a[i] > threshold ? 1 : 0;
  return count;
}

void replay_detect_neon(std::span<const double> benign, std::span<const double> attack,
                        double threshold, std::uint64_t& benign_alarms,
                        std::uint64_t& attacked_bins, std::uint64_t& detected) {
  const double* b = benign.data();
  const double* at = attack.data();
  const std::size_t n = benign.size();
  const float64x2_t tv = vdupq_n_f64(threshold);
  const float64x2_t zero = vdupq_n_f64(0.0);
  int64x2_t acc_alarm = vdupq_n_s64(0);
  int64x2_t acc_attacked = vdupq_n_s64(0);
  int64x2_t acc_hit = vdupq_n_s64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t bv = vld1q_f64(b + i);
    const float64x2_t av = vld1q_f64(at + i);
    const uint64x2_t m_alarm = vcgtq_f64(bv, tv);
    const uint64x2_t m_attacked = vcgtq_f64(av, zero);
    const uint64x2_t m_hit = vandq_u64(vcgtq_f64(vaddq_f64(bv, av), tv), m_attacked);
    acc_alarm = vsubq_s64(acc_alarm, vreinterpretq_s64_u64(m_alarm));
    acc_attacked = vsubq_s64(acc_attacked, vreinterpretq_s64_u64(m_attacked));
    acc_hit = vsubq_s64(acc_hit, vreinterpretq_s64_u64(m_hit));
  }
  const auto reduce = [](int64x2_t acc) {
    return static_cast<std::uint64_t>(vgetq_lane_s64(acc, 0) + vgetq_lane_s64(acc, 1));
  };
  std::uint64_t alarms = reduce(acc_alarm);
  std::uint64_t attacked = reduce(acc_attacked);
  std::uint64_t hits = reduce(acc_hit);
  for (; i < n; ++i) {
    if (b[i] > threshold) ++alarms;
    if (at[i] > 0.0) {
      ++attacked;
      if (b[i] + at[i] > threshold) ++hits;
    }
  }
  benign_alarms = alarms;
  attacked_bins = attacked;
  detected = hits;
}

void joint_exceed_neon(const std::span<const double>* slices, const double* thresholds,
                       std::size_t feature_count, std::size_t bins,
                       std::uint64_t* marginal, std::uint64_t& joint) {
  for (std::size_t f = 0; f < feature_count; ++f) marginal[f] = 0;
  std::uint64_t any_count = 0;
  std::size_t b = 0;
  for (; b + 2 <= bins; b += 2) {
    uint64x2_t any = vdupq_n_u64(0);
    for (std::size_t f = 0; f < feature_count; ++f) {
      const float64x2_t v = vld1q_f64(slices[f].data() + b);
      const uint64x2_t m = vcgtq_f64(v, vdupq_n_f64(thresholds[f]));
      marginal[f] += (vgetq_lane_u64(m, 0) != 0 ? 1u : 0u) +
                     (vgetq_lane_u64(m, 1) != 0 ? 1u : 0u);
      any = vorrq_u64(any, m);
    }
    any_count += (vgetq_lane_u64(any, 0) != 0 ? 1u : 0u) +
                 (vgetq_lane_u64(any, 1) != 0 ? 1u : 0u);
  }
  for (; b < bins; ++b) {
    bool any = false;
    for (std::size_t f = 0; f < feature_count; ++f) {
      if (slices[f][b] > thresholds[f]) {
        ++marginal[f];
        any = true;
      }
    }
    if (any) ++any_count;
  }
  joint = any_count;
}

void widen_u32_neon(std::span<const std::uint32_t> values, double* out) {
  // u32 -> u64 widen, then the exact u64 -> f64 convert (every u32 fits the
  // 53-bit mantissa, so no rounding in either step).
  const std::uint32_t* v = values.data();
  const std::size_t n = values.size();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint32x2_t narrow = vld1_u32(v + i);
    vst1q_f64(out + i, vcvtq_f64_u64(vmovl_u32(narrow)));
  }
  for (; i < n; ++i) out[i] = static_cast<double>(v[i]);
}

void philox_fill_neon(std::uint64_t key, std::uint64_t stream,
                      std::uint64_t first_block, std::uint32_t* out,
                      std::size_t blocks) {
  // NEON has no 4-wide 32x32 -> 64 multiply analog of _mm256_mul_epu32 that
  // beats the interleaved scalar schedule here; the portable bulk form
  // already keeps four blocks in flight.
  util::Philox4x32::fill_blocks(key, stream, first_block, out, blocks);
}

}  // namespace

namespace detail {

const Ops* neon_ops() noexcept {
  static const Ops ops = {
      "neon",            rank_sorted_neon,  rank_unsorted_neon, rank_grid_neon,
      count_exceed_neon, replay_detect_neon, joint_exceed_neon, widen_u32_neon,
      philox_fill_neon,  poisson_counts_portable,
  };
  return &ops;
}

}  // namespace detail
}  // namespace monohids::stats::kernels

#else  // not aarch64

namespace monohids::stats::kernels::detail {
const Ops* neon_ops() noexcept { return nullptr; }
}  // namespace monohids::stats::kernels::detail

#endif
