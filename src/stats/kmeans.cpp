#include "stats/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace monohids::stats {

namespace {

double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

std::size_t sample_index(util::Xoshiro256& rng, std::size_t n) {
  return static_cast<std::size_t>(rng() % n);
}

// k-means++ seeding: first centroid uniform, each next centroid chosen with
// probability proportional to squared distance to the nearest chosen one.
std::vector<std::vector<double>> seed_centroids(std::span<const std::vector<double>> points,
                                                std::uint32_t k, util::Xoshiro256& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(points[sample_index(rng, points.size())]);
  std::vector<double> d2(points.size(), std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], squared_distance(points[i], centroids.back()));
      total += d2[i];
    }
    if (total <= 0.0) {
      // all remaining points coincide with chosen centroids; duplicate one
      centroids.push_back(points[0]);
      continue;
    }
    double target = rng.uniform01() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      target -= d2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

KMeansResult kmeans(std::span<const std::vector<double>> points, std::uint32_t k,
                    util::Xoshiro256& rng, const KMeansOptions& options) {
  MONOHIDS_EXPECT(k > 0, "k must be positive");
  MONOHIDS_EXPECT(points.size() >= k, "need at least k points");
  const std::size_t dim = points[0].size();
  for (const auto& p : points) {
    MONOHIDS_EXPECT(p.size() == dim, "all points must share a dimension");
  }

  KMeansResult result;
  result.centroids = seed_centroids(points, k, rng);
  result.assignment.assign(points.size(), 0);

  double prev_inertia = std::numeric_limits<double>::infinity();
  for (std::uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    // Assignment step.
    double inertia = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::uint32_t best_c = 0;
      for (std::uint32_t c = 0; c < k; ++c) {
        const double d = squared_distance(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.assignment[i] = best_c;
      inertia += best;
    }
    result.inertia = inertia;
    result.iterations = iter + 1;

    // Update step.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::uint32_t c = result.assignment[i];
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    for (std::uint32_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point to keep k clusters alive.
        result.centroids[c] = points[sample_index(rng, points.size())];
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }

    if (prev_inertia - inertia <= options.tolerance) {
      result.converged = true;
      break;
    }
    prev_inertia = inertia;
  }
  return result;
}

double mean_silhouette(std::span<const std::vector<double>> points,
                       std::span<const std::uint32_t> assignment, std::uint32_t k) {
  MONOHIDS_EXPECT(points.size() == assignment.size(), "assignment size mismatch");
  MONOHIDS_EXPECT(k >= 2, "silhouette requires k >= 2");
  std::vector<std::size_t> cluster_size(k, 0);
  for (std::uint32_t a : assignment) {
    MONOHIDS_EXPECT(a < k, "assignment id out of range");
    ++cluster_size[a];
  }
  for (std::size_t s : cluster_size) {
    MONOHIDS_EXPECT(s > 0, "silhouette requires non-empty clusters");
  }

  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::uint32_t own = assignment[i];
    if (cluster_size[own] == 1) continue;  // silhouette undefined; skip

    std::vector<double> mean_dist(k, 0.0);
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j == i) continue;
      mean_dist[assignment[j]] += std::sqrt(squared_distance(points[i], points[j]));
    }
    double a = mean_dist[own] / static_cast<double>(cluster_size[own] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (std::uint32_t c = 0; c < k; ++c) {
      if (c == own) continue;
      b = std::min(b, mean_dist[c] / static_cast<double>(cluster_size[c]));
    }
    const double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace monohids::stats
