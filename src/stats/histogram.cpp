#include "stats/histogram.hpp"

#include <cmath>

#include "util/error.hpp"

namespace monohids::stats {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  MONOHIDS_EXPECT(hi > lo, "histogram range must be non-empty");
  MONOHIDS_EXPECT(bins > 0, "histogram needs at least one bin");
}

void LinearHistogram::add(double value, std::uint64_t count) {
  MONOHIDS_EXPECT(std::isfinite(value), "histogram values must be finite");
  total_ += count;
  if (value < lo_) {
    underflow_ += count;
  } else if (value >= hi_) {
    overflow_ += count;
  } else {
    counts_[bin_of(value)] += count;
  }
}

std::uint64_t LinearHistogram::count_at(std::size_t bin) const {
  MONOHIDS_EXPECT(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

std::pair<double, double> LinearHistogram::bin_edges(std::size_t bin) const {
  MONOHIDS_EXPECT(bin < counts_.size(), "histogram bin out of range");
  return {lo_ + width_ * static_cast<double>(bin), lo_ + width_ * static_cast<double>(bin + 1)};
}

std::size_t LinearHistogram::bin_of(double value) const {
  MONOHIDS_EXPECT(value >= lo_ && value < hi_, "value outside histogram range");
  auto bin = static_cast<std::size_t>((value - lo_) / width_);
  return std::min(bin, counts_.size() - 1);  // guard against rounding at hi_
}

double LinearHistogram::quantile(double q) const {
  MONOHIDS_EXPECT(total_ > 0, "quantile of empty histogram");
  MONOHIDS_EXPECT(q >= 0.0 && q <= 1.0, "quantile probability must be in [0,1]");
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double next = cum + static_cast<double>(counts_[b]);
    if (target <= next && counts_[b] > 0) {
      const auto [blo, bhi] = bin_edges(b);
      const double frac = (target - cum) / static_cast<double>(counts_[b]);
      return blo + frac * (bhi - blo);
    }
    cum = next;
  }
  return hi_;
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t bins_per_decade)
    : log_lo_(std::log10(lo)), log_hi_(std::log10(hi)), lo_(lo), hi_(hi) {
  MONOHIDS_EXPECT(lo > 0 && hi > lo, "log histogram needs 0 < lo < hi");
  MONOHIDS_EXPECT(bins_per_decade > 0, "log histogram needs bins");
  const double decades = log_hi_ - log_lo_;
  const auto bins =
      static_cast<std::size_t>(std::ceil(decades * static_cast<double>(bins_per_decade)));
  log_width_ = decades / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void LogHistogram::add(double value, std::uint64_t count) {
  MONOHIDS_EXPECT(std::isfinite(value), "histogram values must be finite");
  total_ += count;
  if (value < lo_) {  // includes all non-positive values
    nonpositive_ += count;
    return;
  }
  if (value >= hi_) {
    overflow_ += count;
    return;
  }
  auto bin = static_cast<std::size_t>((std::log10(value) - log_lo_) / log_width_);
  counts_[std::min(bin, counts_.size() - 1)] += count;
}

std::uint64_t LogHistogram::count_at(std::size_t bin) const {
  MONOHIDS_EXPECT(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

std::pair<double, double> LogHistogram::bin_edges(std::size_t bin) const {
  MONOHIDS_EXPECT(bin < counts_.size(), "histogram bin out of range");
  return {std::pow(10.0, log_lo_ + log_width_ * static_cast<double>(bin)),
          std::pow(10.0, log_lo_ + log_width_ * static_cast<double>(bin + 1))};
}

double LogHistogram::quantile(double q) const {
  MONOHIDS_EXPECT(total_ > 0, "quantile of empty histogram");
  MONOHIDS_EXPECT(q >= 0.0 && q <= 1.0, "quantile probability must be in [0,1]");
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(nonpositive_);
  if (target <= cum) return 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double next = cum + static_cast<double>(counts_[b]);
    if (target <= next && counts_[b] > 0) {
      const auto [blo, bhi] = bin_edges(b);
      const double frac = (target - cum) / static_cast<double>(counts_[b]);
      return blo + frac * (bhi - blo);  // linear within the (narrow) log bin
    }
    cum = next;
  }
  return hi_;
}

}  // namespace monohids::stats
