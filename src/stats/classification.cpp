#include "stats/classification.hpp"

namespace monohids::stats {

ConfusionCounts& ConfusionCounts::operator+=(const ConfusionCounts& other) noexcept {
  true_positives += other.true_positives;
  false_positives += other.false_positives;
  true_negatives += other.true_negatives;
  false_negatives += other.false_negatives;
  return *this;
}

double false_positive_rate(const ConfusionCounts& c) noexcept {
  const auto denom = c.negatives();
  return denom == 0 ? 0.0
                    : static_cast<double>(c.false_positives) / static_cast<double>(denom);
}

double false_negative_rate(const ConfusionCounts& c) noexcept {
  const auto denom = c.positives();
  return denom == 0 ? 0.0
                    : static_cast<double>(c.false_negatives) / static_cast<double>(denom);
}

double precision(const ConfusionCounts& c) noexcept {
  const auto denom = c.true_positives + c.false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(c.true_positives) / static_cast<double>(denom);
}

double recall(const ConfusionCounts& c) noexcept {
  const auto denom = c.positives();
  return denom == 0 ? 0.0
                    : static_cast<double>(c.true_positives) / static_cast<double>(denom);
}

double f_measure(const ConfusionCounts& c) noexcept {
  const double p = precision(c);
  const double r = recall(c);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double utility(double fn_rate, double fp_rate, double w) noexcept {
  return 1.0 - (w * fn_rate + (1.0 - w) * fp_rate);
}

}  // namespace monohids::stats
