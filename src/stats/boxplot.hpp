// Box-plot summaries (Tukey five-number summary with 1.5·IQR whiskers).
//
// Figures 3(a) and 4(b) of the paper are box plots of per-user utilities and
// hidden attack traffic; this module turns a sample vector into the stats the
// ASCII renderer draws.
#pragma once

#include <span>

#include "util/ascii_chart.hpp"

namespace monohids::stats {

/// Computes Tukey box statistics: quartiles via linear interpolation,
/// whiskers at the most extreme samples within 1.5·IQR of the box, and the
/// count of samples beyond the whiskers. Requires a non-empty sample.
[[nodiscard]] util::BoxStats box_stats(std::span<const double> samples);

}  // namespace monohids::stats
