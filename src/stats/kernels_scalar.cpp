// Portable scalar back-end: the reference implementation every SIMD
// back-end must match integer-for-integer. rank_unsorted deliberately uses
// the same std::upper_bound the seed per-call path used, so "scalar
// back-end + batch plumbing" is exactly the seed math in batch clothing.
#include <algorithm>
#include <cstdint>
#include <span>

#include "stats/kernels.hpp"
#include "stats/sampling.hpp"
#include "util/rng.hpp"

namespace monohids::stats::kernels {
namespace {

void rank_sorted_scalar(std::span<const double> arena, std::span<const double> xs,
                        double shift, std::uint32_t* out) {
  const double* a = arena.data();
  const std::size_t n = arena.size();
  if (detail::sweep_prefers_binary(n, xs.size())) {
    // Sparse sweep over a large arena: per-query binary search touches far
    // fewer samples than a front-to-back merge-scan would.
    for (std::size_t j = 0; j < xs.size(); ++j) {
      const auto it = std::upper_bound(arena.begin(), arena.end(), xs[j] - shift);
      out[j] = static_cast<std::uint32_t>(it - arena.begin());
    }
    return;
  }
  std::size_t i = 0;
  for (std::size_t j = 0; j < xs.size(); ++j) {
    const double q = xs[j] - shift;
    while (i < n && a[i] <= q) ++i;
    out[j] = static_cast<std::uint32_t>(i);
  }
}

void rank_unsorted_scalar(std::span<const double> arena, std::span<const double> xs,
                          double shift, std::uint32_t* out) {
  for (std::size_t j = 0; j < xs.size(); ++j) {
    const double q = xs[j] - shift;
    const auto it = std::upper_bound(arena.begin(), arena.end(), q);
    out[j] = static_cast<std::uint32_t>(it - arena.begin());
  }
}

void rank_grid_scalar(std::span<const double> arena, std::span<const double> thresholds,
                      std::span<const double> sizes, std::uint32_t* ranks) {
  const std::size_t T = thresholds.size();
  for (std::size_t s = 0; s < sizes.size(); ++s) {
    rank_sorted_scalar(arena, thresholds, sizes[s], ranks + s * T);
  }
}

std::uint64_t count_exceed_scalar(std::span<const double> values, double threshold) {
  std::uint64_t count = 0;
  for (double v : values) {
    if (v > threshold) ++count;
  }
  return count;
}

void replay_detect_scalar(std::span<const double> benign, std::span<const double> attack,
                          double threshold, std::uint64_t& benign_alarms,
                          std::uint64_t& attacked_bins, std::uint64_t& detected) {
  std::uint64_t alarms = 0, attacked = 0, hits = 0;
  for (std::size_t i = 0; i < benign.size(); ++i) {
    if (benign[i] > threshold) ++alarms;
    if (attack[i] > 0.0) {
      ++attacked;
      if (benign[i] + attack[i] > threshold) ++hits;
    }
  }
  benign_alarms = alarms;
  attacked_bins = attacked;
  detected = hits;
}

void joint_exceed_scalar(const std::span<const double>* slices, const double* thresholds,
                         std::size_t feature_count, std::size_t bins,
                         std::uint64_t* marginal, std::uint64_t& joint) {
  for (std::size_t f = 0; f < feature_count; ++f) marginal[f] = 0;
  std::uint64_t any_count = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    bool any = false;
    for (std::size_t f = 0; f < feature_count; ++f) {
      if (slices[f][b] > thresholds[f]) {
        ++marginal[f];
        any = true;
      }
    }
    if (any) ++any_count;
  }
  joint = any_count;
}

void widen_u32_scalar(std::span<const std::uint32_t> values, double* out) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = static_cast<double>(values[i]);
  }
}

void philox_fill_scalar(std::uint64_t key, std::uint64_t stream,
                        std::uint64_t first_block, std::uint32_t* out,
                        std::size_t blocks) {
  util::Philox4x32::fill_blocks(key, stream, first_block, out, blocks);
}

}  // namespace

namespace detail {

std::uint64_t poisson_counts_portable(const double* means, const std::uint32_t* words,
                                      std::uint32_t* counts, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double mean = means[i];
    const double u = batch::to_unit32(words[i]);
    std::uint64_t k = 0;
    // Zero-draw shortcut, part of the draw contract: u <= 1 - mean implies
    // u <= exp(-mean), so the full inversion would land on 0 anyway — the
    // common idle bin skips the exp entirely. Applied per LANE in every
    // back-end (never per quad), so tile partitioning cannot perturb it.
    if (u + mean <= 1.0) {
      // k stays 0 (also covers mean == 0 exactly).
    } else if (mean < batch::kNormalCutoff32) [[likely]] {
      k = batch::poisson_inv_core(u, mean, batch::exp_neg12(mean));
    } else {
      k = batch::poisson_normal_word32(words[i], mean);
    }
    counts[i] = static_cast<std::uint32_t>(k);
    total += k;
  }
  return total;
}

const Ops* scalar_ops() noexcept {
  static const Ops ops = {
      "scalar",           rank_sorted_scalar,  rank_unsorted_scalar, rank_grid_scalar,
      count_exceed_scalar, replay_detect_scalar, joint_exceed_scalar, widen_u32_scalar,
      philox_fill_scalar,  poisson_counts_portable,
  };
  return &ops;
}

}  // namespace detail
}  // namespace monohids::stats::kernels
