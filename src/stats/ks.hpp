// Two-sample Kolmogorov-Smirnov statistic.
//
// The paper claims "tremendous natural diversity" across users; the KS
// statistic D = sup |F_a - F_b| makes that formal: D near 0 means two
// users' bin-count distributions are interchangeable, D near 1 means they
// barely overlap. fig1_tail_diversity reports the population's pairwise-D
// summary next to the threshold spread.
#pragma once

#include <span>

#include "stats/empirical.hpp"

namespace monohids::stats {

/// D statistic over two sorted-or-not sample sets (both non-empty).
[[nodiscard]] double ks_statistic(std::span<const double> a, std::span<const double> b);

/// Convenience overload for empirical distributions.
[[nodiscard]] double ks_statistic(const EmpiricalDistribution& a,
                                  const EmpiricalDistribution& b);

}  // namespace monohids::stats
