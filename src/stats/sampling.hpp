// Heavy-tailed samplers used by the synthetic trace generator.
//
// The population substitute for the paper's proprietary 350-host traces is
// built from log-normal user-intensity meta-distributions, Pareto session
// sizes and Zipf destination popularity — the standard models for enterprise
// traffic tails. All samplers draw from our deterministic Xoshiro256 engine.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace monohids::stats {

/// Log-normal: ln X ~ N(mu, sigma^2).
class LogNormalSampler {
 public:
  LogNormalSampler(double mu, double sigma);
  [[nodiscard]] double sample(util::Xoshiro256& rng) const;
  [[nodiscard]] double median() const;
  [[nodiscard]] double mean() const;

 private:
  double mu_, sigma_;
};

/// Pareto (Type I): P(X > x) = (xm / x)^alpha for x >= xm.
class ParetoSampler {
 public:
  ParetoSampler(double scale_xm, double shape_alpha);
  [[nodiscard]] double sample(util::Xoshiro256& rng) const;
  [[nodiscard]] double scale() const noexcept { return xm_; }
  [[nodiscard]] double shape() const noexcept { return alpha_; }

 private:
  double xm_, alpha_;
};

/// Zipf over ranks {1..n}: P(rank k) ∝ k^-s. Used for destination
/// popularity (a handful of servers receive most connections; the tail of
/// distinct destinations is long).
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double exponent_s);
  [[nodiscard]] std::uint32_t sample(util::Xoshiro256& rng) const;
  [[nodiscard]] std::uint32_t support() const noexcept {
    return static_cast<std::uint32_t>(cdf_.size());
  }

 private:
  std::vector<double> cdf_;  // cumulative probabilities, cdf_.back() == 1
};

/// Poisson sampler (inversion for small mean, PTRS-ish normal approximation
/// cutoff for large mean). Used for per-bin event counts.
[[nodiscard]] std::uint64_t sample_poisson(util::Xoshiro256& rng, double mean);

/// Standard normal via Box–Muller (single value; the pair's second half is
/// discarded for simplicity — generation speed is not the bottleneck).
[[nodiscard]] double sample_standard_normal(util::Xoshiro256& rng);

/// Exponential with the given rate (> 0).
[[nodiscard]] double sample_exponential(util::Xoshiro256& rng, double rate);

/// Uniform integer in [lo, hi] inclusive.
[[nodiscard]] std::uint64_t sample_uniform_int(util::Xoshiro256& rng, std::uint64_t lo,
                                               std::uint64_t hi);

// ---------------------------------------------------------------------------
// Batch sampling API.
//
// The trace generator's inner loop issues hundreds of millions of draws per
// scenario, almost all of them Poisson counts whose mean repeats across long
// runs of bins (night floors, weekly periodicity). This API splits each
// sampler into a preparation step (the libm work: exp, threshold
// derivation — batchable, dedupable, hoistable out of the RNG loop) and a
// per-draw step that is pure integer/multiply arithmetic.
//
// Draw-order contract: every batch::* sampler consumes draws from the
// engine in EXACTLY the order and count of its per-call counterpart
// (sample_poisson, uniform01, sample_exponential), so interleaved streams
// stay bit-identical no matter which side prepared its parameters. The
// integer thresholds below make the common branches exact: u = (x >> 11) *
// 2^-53 maps the engine word x to a double, and because m * 2^-53 is exact
// for any 53-bit m, comparisons of u against a precomputed double reduce to
// exact integer compares of m against a precomputed threshold.

namespace batch {

/// The double the engine derives from a raw draw word: (x >> 11) * 2^-53.
/// Exact (the 53-bit mantissa fits), which is what makes the integer
/// thresholds below bit-faithful.
[[nodiscard]] inline double to_unit(std::uint64_t m) noexcept {
  return static_cast<double>(m) * 0x1.0p-53;
}

/// Smallest m with to_unit(m) > limit, i.e. Knuth inversion returns 0 for
/// mean -ln(limit) iff the first draw word (>> 11) is below this. limit *
/// 2^53 is an exact power-of-two scaling, so floor(limit * 2^53) + 1 is
/// exact — no fixup loop needed.
[[nodiscard]] inline std::uint64_t knuth_zero_threshold(double limit) noexcept {
  if (limit >= 1.0) return (std::uint64_t{1} << 53) + 1;
  if (limit <= 0.0) return 1;  // only m = 0 fails to_unit(m) > 0
  return static_cast<std::uint64_t>(limit * 0x1.0p53) + 1;
}

/// Threshold T with (to_unit(m) < p) == (m < T): turns a uniform01
/// Bernoulli test into one integer compare. Computed with a ceil estimate
/// plus an exactness fixup (p * 2^53 itself may round).
[[nodiscard]] std::uint64_t bernoulli_threshold(double p) noexcept;

/// Prepared per-mean Poisson parameters. For mean < 30 (Knuth inversion)
/// `limit` is exp(-mean) and `zero_threshold` its integer form; for the
/// normal-approximation regime both are unused.
struct PoissonRow {
  double mean = 0.0;
  double limit = 0.0;
  std::uint64_t zero_threshold = 0;
};

/// Fills rows[i] from means[i]. Consecutive equal means share one exp()
/// call — on diurnal rate tables (night floors, weekend plateaus) this
/// collapses most of the libm cost. Consumes no draws.
void prepare_poisson_rows(std::span<const double> means, std::span<PoissonRow> rows);

/// Draws one Poisson count from a prepared row. Bit-identical to
/// sample_poisson(rng, row.mean): same regimes (0 draws for mean 0, Knuth
/// inversion below 30, Box–Muller normal approximation above), same draw
/// count, same results. Forced inline: the caller's loop keeps the engine
/// state in registers only if no call boundary makes its address escape.
[[gnu::always_inline]] inline std::uint64_t sample_poisson_prepared(
    util::Xoshiro256& rng, const PoissonRow& row) {
  if (row.mean == 0.0) return 0;
  if (row.mean < 30.0) [[likely]] {
    // Knuth inversion with the zero-count case (the overwhelmingly common
    // one on diurnal rate tables) decided by a single integer compare.
    const std::uint64_t m1 = rng() >> 11;
    if (m1 < row.zero_threshold) return 0;
    double product = to_unit(m1);
    std::uint64_t k = 0;
    do {
      product *= rng.uniform01();
      ++k;
    } while (product > row.limit);
    return k;
  }
  // Normal approximation, inlined so the engine's address never escapes
  // (an out-of-line call here forces the RNG state to memory in the hot
  // caller). Mirrors sample_standard_normal + the sample_poisson epilogue.
  double u1 = rng.uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = rng.uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  const double v = row.mean + std::sqrt(row.mean) * z + 0.5;
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

/// out[i] = rng.uniform01(), in order — the batched form of the arrival
/// draws (one per session) in the packet walk.
void sample_uniform01_batch(util::Xoshiro256& rng, std::span<double> out);

/// out[i] = sample_exponential(rng, rate), in order.
void sample_exponential_batch(util::Xoshiro256& rng, double rate, std::span<double> out);

/// Exact integer-threshold table for a capped, floored Pareto count:
/// count(u) = min(floor(1 / u^(1/shape)), cap) with u guarded to 2^-53 —
/// the apps.cpp pareto_count draw. boundary[k-1] holds the largest draw
/// word m with count(to_unit(m)) >= k + 1, so a count is recovered from a
/// raw word with integer compares only (no pow). Boundaries are found once
/// by binary search over the 2^53 word space and verified exact.
class ParetoCountTable {
 public:
  ParetoCountTable(double shape, std::uint32_t cap);

  /// Count for draw word m (= engine() >> 11). Descending boundary scan;
  /// expected ~1-2 probes for shape > 1.5.
  [[nodiscard]] std::uint32_t count(std::uint64_t m) const noexcept {
    std::uint32_t k = 1;
    while (k < cap_ && m <= boundary_[k - 1]) ++k;
    return k;
  }

  /// Branchless over the first three boundaries (covers ~98% of draws for
  /// shape >= 1.5); falls back to the scan for the tail.
  [[nodiscard]] std::uint32_t count_fast(std::uint64_t m) const noexcept {
    if (cap_ >= 4) [[likely]] {
      if (m > boundary_[2]) [[likely]]
        return 1 + (m <= boundary_[0] ? 1u : 0u) + (m <= boundary_[1] ? 1u : 0u);
      std::uint32_t k = 4;
      while (k < cap_ && m <= boundary_[k - 1]) ++k;
      return k;
    }
    return count(m);
  }

  [[nodiscard]] std::uint32_t cap() const noexcept { return cap_; }

  /// Raw boundary word for count k+1 (callers hoist the first few into
  /// locals to keep a staging loop's compares register-resident).
  [[nodiscard]] std::uint64_t boundary(std::size_t k) const noexcept {
    return boundary_[k];
  }

 private:
  std::vector<std::uint64_t> boundary_;  // descending in k
  std::uint32_t cap_;
};

}  // namespace batch

}  // namespace monohids::stats
