// Heavy-tailed samplers used by the synthetic trace generator.
//
// The population substitute for the paper's proprietary 350-host traces is
// built from log-normal user-intensity meta-distributions, Pareto session
// sizes and Zipf destination popularity — the standard models for enterprise
// traffic tails. All samplers draw from our deterministic Xoshiro256 engine.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace monohids::stats {

/// Standard normal via Box–Muller (single value; the pair's second half is
/// discarded for simplicity — generation speed is not the bottleneck).
/// Templated on the engine: any uniform01() source works (Xoshiro256 for
/// the v1 streams, Philox4x32 for v2 counter-mode streams), and the
/// arithmetic is identical either way — only the draw grain differs.
template <typename Engine>
[[nodiscard]] double sample_standard_normal(Engine& rng) {
  double u1 = rng.uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = rng.uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

/// Exponential with the given rate (> 0).
template <typename Engine>
[[nodiscard]] double sample_exponential(Engine& rng, double rate) {
  MONOHIDS_EXPECT(rate > 0.0, "exponential rate must be positive");
  double u = rng.uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

/// Log-normal: ln X ~ N(mu, sigma^2).
class LogNormalSampler {
 public:
  LogNormalSampler(double mu, double sigma);
  template <typename Engine>
  [[nodiscard]] double sample(Engine& rng) const {
    return std::exp(mu_ + sigma_ * sample_standard_normal(rng));
  }
  [[nodiscard]] double median() const;
  [[nodiscard]] double mean() const;

 private:
  double mu_, sigma_;
};

/// Pareto (Type I): P(X > x) = (xm / x)^alpha for x >= xm.
class ParetoSampler {
 public:
  ParetoSampler(double scale_xm, double shape_alpha);
  [[nodiscard]] double sample(util::Xoshiro256& rng) const;
  [[nodiscard]] double scale() const noexcept { return xm_; }
  [[nodiscard]] double shape() const noexcept { return alpha_; }

 private:
  double xm_, alpha_;
};

/// Zipf over ranks {1..n}: P(rank k) ∝ k^-s. Used for destination
/// popularity (a handful of servers receive most connections; the tail of
/// distinct destinations is long).
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double exponent_s);
  [[nodiscard]] std::uint32_t sample(util::Xoshiro256& rng) const;
  [[nodiscard]] std::uint32_t support() const noexcept {
    return static_cast<std::uint32_t>(cdf_.size());
  }

 private:
  std::vector<double> cdf_;  // cumulative probabilities, cdf_.back() == 1
};

/// Poisson sampler (inversion for small mean, PTRS-ish normal approximation
/// cutoff for large mean). Used for per-bin event counts.
[[nodiscard]] std::uint64_t sample_poisson(util::Xoshiro256& rng, double mean);

/// Uniform integer in [lo, hi] inclusive.
[[nodiscard]] std::uint64_t sample_uniform_int(util::Xoshiro256& rng, std::uint64_t lo,
                                               std::uint64_t hi);

// ---------------------------------------------------------------------------
// Batch sampling API.
//
// The trace generator's inner loop issues hundreds of millions of draws per
// scenario, almost all of them Poisson counts whose mean repeats across long
// runs of bins (night floors, weekly periodicity). This API splits each
// sampler into a preparation step (the libm work: exp, threshold
// derivation — batchable, dedupable, hoistable out of the RNG loop) and a
// per-draw step that is pure integer/multiply arithmetic.
//
// Draw-order contract: every batch::* sampler consumes draws from the
// engine in EXACTLY the order and count of its per-call counterpart
// (sample_poisson, uniform01, sample_exponential), so interleaved streams
// stay bit-identical no matter which side prepared its parameters. The
// integer thresholds below make the common branches exact: u = (x >> 11) *
// 2^-53 maps the engine word x to a double, and because m * 2^-53 is exact
// for any 53-bit m, comparisons of u against a precomputed double reduce to
// exact integer compares of m against a precomputed threshold.

namespace batch {

/// The double the engine derives from a raw draw word: (x >> 11) * 2^-53.
/// Exact (the 53-bit mantissa fits), which is what makes the integer
/// thresholds below bit-faithful.
[[nodiscard]] inline double to_unit(std::uint64_t m) noexcept {
  return static_cast<double>(m) * 0x1.0p-53;
}

/// Smallest m with to_unit(m) > limit, i.e. Knuth inversion returns 0 for
/// mean -ln(limit) iff the first draw word (>> 11) is below this. limit *
/// 2^53 is an exact power-of-two scaling, so floor(limit * 2^53) + 1 is
/// exact — no fixup loop needed.
[[nodiscard]] inline std::uint64_t knuth_zero_threshold(double limit) noexcept {
  if (limit >= 1.0) return (std::uint64_t{1} << 53) + 1;
  if (limit <= 0.0) return 1;  // only m = 0 fails to_unit(m) > 0
  return static_cast<std::uint64_t>(limit * 0x1.0p53) + 1;
}

/// Threshold T with (to_unit(m) < p) == (m < T): turns a uniform01
/// Bernoulli test into one integer compare. Computed with a ceil estimate
/// plus an exactness fixup (p * 2^53 itself may round).
[[nodiscard]] std::uint64_t bernoulli_threshold(double p) noexcept;

// -- 32-bit word variants (the v2 counter-mode draw grain) ------------------
//
// The v2 scenario contract consumes whole Philox 32-bit words: u =
// to_unit32(w) = w * 2^-32, exact for every w. The same
// power-of-two-scaling argument as the 53-bit forms applies, with one
// simplification: p * 2^32 is itself exact for any double p in (0, 1), so
// the Bernoulli threshold needs no fixup loop at all. Thresholds are
// stored as uint64 because the inclusive bounds can be 2^32.

/// The double the v2 contract derives from a raw 32-bit word (exact).
[[nodiscard]] inline double to_unit32(std::uint32_t w) noexcept {
  return static_cast<double>(w) * 0x1.0p-32;
}

/// Smallest T with to_unit32(w) > limit iff w >= T, i.e. Knuth inversion
/// returns 0 for mean -ln(limit) iff the first word is below T.
[[nodiscard]] inline std::uint64_t knuth_zero_threshold32(double limit) noexcept {
  if (limit >= 1.0) return (std::uint64_t{1} << 32) + 1;
  if (limit <= 0.0) return 1;  // only w = 0 fails to_unit32(w) > 0
  return static_cast<std::uint64_t>(limit * 0x1.0p32) + 1;
}

/// Threshold T with (to_unit32(w) < p) == (w < T). Exact by construction:
/// w * 2^-32 < p iff w < p * 2^32, and both scalings are exact.
[[nodiscard]] inline std::uint64_t bernoulli_threshold32(double p) noexcept {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return std::uint64_t{1} << 32;
  return static_cast<std::uint64_t>(std::ceil(p * 0x1.0p32));
}

/// Prepared per-mean Poisson parameters. For mean < 30 (Knuth inversion)
/// `limit` is exp(-mean) and `zero_threshold` its integer form; for the
/// normal-approximation regime both are unused.
struct PoissonRow {
  double mean = 0.0;
  double limit = 0.0;
  std::uint64_t zero_threshold = 0;
};

/// Fills rows[i] from means[i]. Consecutive equal means share one exp()
/// call — on diurnal rate tables (night floors, weekend plateaus) this
/// collapses most of the libm cost. Consumes no draws.
void prepare_poisson_rows(std::span<const double> means, std::span<PoissonRow> rows);

/// Draws one Poisson count from a prepared row. Bit-identical to
/// sample_poisson(rng, row.mean): same regimes (0 draws for mean 0, Knuth
/// inversion below 30, Box–Muller normal approximation above), same draw
/// count, same results. Forced inline: the caller's loop keeps the engine
/// state in registers only if no call boundary makes its address escape.
[[gnu::always_inline]] inline std::uint64_t sample_poisson_prepared(
    util::Xoshiro256& rng, const PoissonRow& row) {
  if (row.mean == 0.0) return 0;
  if (row.mean < 30.0) [[likely]] {
    // Knuth inversion with the zero-count case (the overwhelmingly common
    // one on diurnal rate tables) decided by a single integer compare.
    const std::uint64_t m1 = rng() >> 11;
    if (m1 < row.zero_threshold) return 0;
    double product = to_unit(m1);
    std::uint64_t k = 0;
    do {
      product *= rng.uniform01();
      ++k;
    } while (product > row.limit);
    return k;
  }
  // Normal approximation, inlined so the engine's address never escapes
  // (an out-of-line call here forces the RNG state to memory in the hot
  // caller). Mirrors sample_standard_normal + the sample_poisson epilogue.
  double u1 = rng.uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = rng.uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  const double v = row.mean + std::sqrt(row.mean) * z + 0.5;
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

/// Prepared per-mean Poisson parameters in the v2 32-bit draw grain.
/// Same shape as PoissonRow; the zero threshold lives in the 2^32 word
/// space instead of 2^53 and the normal-approximation regime starts at
/// kNormalCutoff32 instead of 30.
struct PoissonRow32 {
  double mean = 0.0;
  double limit = 0.0;
  std::uint64_t zero_threshold = 0;
};

/// The v2 contract's normal-approximation cutoff. The 53-bit contract
/// switches at mean 30; the v2 grain switches at 12, where a single
/// inverse-CDF normal word already beats a mean-length inversion chain
/// (the chain is a serial FP dependency, ~mean x 5 cycles) and the
/// approximation error is still below the model's own fidelity (the paper
/// works on binned counts an order of magnitude coarser).
inline constexpr double kNormalCutoff32 = 12.0;

/// Reciprocal table shared by the single-word inversion samplers below:
/// k-th factorial ratios become multiplies instead of serial divides.
inline constexpr std::size_t kInvKSize = 256;
inline constexpr auto kInvK = [] {
  std::array<double, kInvKSize> inv{};
  for (std::size_t k = 1; k < kInvKSize; ++k) inv[k] = 1.0 / static_cast<double>(k);
  return inv;
}();

/// Acklam's rational approximation of the standard normal inverse CDF
/// (max absolute error ~1.15e-9 — far below the synthesis model's own
/// fidelity). One uniform word in, one z out: the v2 contract's normal
/// draw, replacing the two-word Box–Muller pair so every v2 draw consumes
/// EXACTLY one 32-bit word regardless of regime.
[[nodiscard]] inline double inverse_normal_cdf(double u) noexcept {
  constexpr double a0 = -3.969683028665376e+01, a1 = 2.209460984245205e+02;
  constexpr double a2 = -2.759285104469687e+02, a3 = 1.383577518672690e+02;
  constexpr double a4 = -3.066479806614716e+01, a5 = 2.506628277459239e+00;
  constexpr double b0 = -5.447609879822406e+01, b1 = 1.615858368580409e+02;
  constexpr double b2 = -1.556989798598866e+02, b3 = 6.680131188771972e+01;
  constexpr double b4 = -1.328068155288572e+01;
  constexpr double c0 = -7.784894002430293e-03, c1 = -3.223964580411365e-01;
  constexpr double c2 = -2.400758277161838e+00, c3 = -2.549732539343734e+00;
  constexpr double c4 = 4.374664141464968e+00, c5 = 2.938163982698783e+00;
  constexpr double d0 = 7.784695709041462e-03, d1 = 3.224671290700398e-01;
  constexpr double d2 = 2.445134137142996e+00, d3 = 3.754408661907416e+00;
  constexpr double plow = 0.02425;
  if (u < plow) {
    const double q = std::sqrt(-2.0 * std::log(u));
    return (((((c0 * q + c1) * q + c2) * q + c3) * q + c4) * q + c5) /
           ((((d0 * q + d1) * q + d2) * q + d3) * q + 1.0);
  }
  if (u > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - u));
    return -(((((c0 * q + c1) * q + c2) * q + c3) * q + c4) * q + c5) /
           ((((d0 * q + d1) * q + d2) * q + d3) * q + 1.0);
  }
  const double q = u - 0.5, r = q * q;
  return (((((a0 * r + a1) * r + a2) * r + a3) * r + a4) * r + a5) * q /
         (((((b0 * r + b1) * r + b2) * r + b3) * r + b4) * r + 1.0);
}

/// Exact single-word Poisson inversion for mean < kNormalCutoff32: walks
/// the CDF from p0 = exp(-mean) until it covers u. The walk is pure FP
/// multiplies (reciprocals from kInvK), consumes NO further words, and
/// returns the exact inverse-CDF count — distributionally identical to a
/// Knuth product chain but with a fixed one-word footprint, which is what
/// lets the v2 contract precompute every bin's word layout.
[[nodiscard]] inline std::uint64_t poisson_inv_core(double u, double mean,
                                                    double p0) noexcept {
  double pk = p0, cum = p0;
  std::uint64_t k = 0;
  while (u > cum && k + 1 < kInvKSize) {
    ++k;
    pk *= mean * kInvK[k];
    cum += pk;
  }
  return k;
}

/// One-word Poisson draw in the v2 grain: exact inversion below
/// kNormalCutoff32 (limit must be exp(-mean); tabulated by callers), the
/// inverse-CDF normal approximation with continuity correction above
/// (limit unused). mean 0 returns 0 without touching the word — but the
/// word is still consumed by the caller's layout either way.
[[nodiscard]] inline std::uint64_t sample_poisson_word32(std::uint32_t w, double mean,
                                                         double limit) noexcept {
  if (mean == 0.0) return 0;
  double u = to_unit32(w);
  if (mean < kNormalCutoff32) [[likely]] return poisson_inv_core(u, mean, limit);
  if (u <= 0.0) u = 0x1.0p-33;
  const double v = mean + std::sqrt(mean) * inverse_normal_cdf(u) + 0.5;
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

/// Deterministic exp(-m) for m in [0, kNormalCutoff32): range reduction
/// against a split ln2 plus a degree-7 Horner polynomial, EVERY multiply-
/// add an explicit std::fma. Fused ops are correctly rounded, so the
/// result is a pure function of the double operand sequence — immune to
/// compiler contraction choices and identical across translation units and
/// SIMD back-ends (the AVX2 kernel mirrors the same fma chain 4 lanes
/// wide). Relative error is below 1e-8 (degree-7 truncation at the ln2/2
/// reduction edge, ~7e-9 measured worst case), which only perturbs the v2
/// draw contract's tabulated thresholds by O(1e-8) in probability; the
/// function itself (not libm exp) IS the contract for the bulk count
/// sweep.
[[nodiscard]] inline double exp_neg12(double m) noexcept {
  constexpr double kLog2e = 1.4426950408889634;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  const double x = -m;
  const double kd = std::floor(std::fma(x, kLog2e, 0.5));
  double r = std::fma(-kd, kLn2Hi, x);
  r = std::fma(-kd, kLn2Lo, r);
  // exp(r) for |r| <= ln2 / 2, Horner in explicit fma steps.
  double p = 1.0 / 5040.0;
  p = std::fma(p, r, 1.0 / 720.0);
  p = std::fma(p, r, 1.0 / 120.0);
  p = std::fma(p, r, 1.0 / 24.0);
  p = std::fma(p, r, 1.0 / 6.0);
  p = std::fma(p, r, 0.5);
  p = std::fma(p, r, 1.0);
  p = std::fma(p, r, 1.0);
  // Scale by 2^kd; kd is in [-18, 0] for this domain, so the biased
  // exponent never underflows.
  const auto bits = static_cast<std::uint64_t>(1023 + static_cast<int>(kd)) << 52;
  return p * std::bit_cast<double>(bits);
}

/// Out-of-line normal-regime resolution of one count word (mean >=
/// kNormalCutoff32). Lives in sampling.cpp so that every back-end's bulk
/// count sweep funnels rare heavy-mean lanes through literally the same
/// compiled code — one TU, one instruction sequence, no per-TU
/// floating-point contraction drift.
[[nodiscard]] std::uint64_t poisson_normal_word32(std::uint32_t w, double mean) noexcept;

/// Length of a precomputed inverse-CDF threshold row. Rows only exist for
/// means below kNormalCutoff32, where P(X > 47) is below 1e-15 — the scan
/// clamp at the row edge is unreachable in practice and documented as part
/// of the draw contract.
inline constexpr std::size_t kCdfRowLen = 48;

/// Resolves a word against one threshold row: k = #{j : w > t_j} with
/// t_j = min(floor(P(X <= j) * 2^32), 2^32 - 1), i.e. exact inverse-CDF
/// inversion of u = w / 2^32 (u > CDF_j iff w > t_j) with every comparison
/// a single integer compare. Entries with CDF 1 store 2^32 - 1, which no
/// word clears, so the scan terminates naturally at the support edge. The
/// scan exits at the first uncleared threshold — expected probes E[X] + 1.
[[nodiscard]] inline std::uint64_t cdf_row_scan(const std::uint32_t* row,
                                               std::uint32_t w) noexcept {
  std::uint64_t k = 0;
  while (k < kCdfRowLen && w > row[k]) ++k;
  return k;
}

/// One-word Poisson-sum draw table: row s holds the threshold row for
/// Poisson(s * mean_step), one row per integer sufficient statistic below
/// the cap. Draws with a tabulated stat are integer row scans; past the
/// cap the mean has cleared kNormalCutoff32 (by construction of the cap)
/// and the draw falls back to the one-word inverse-CDF normal. This is the
/// v2 contract's merged form of a run of per-session Poisson draws: a sum
/// of independent Poissons is Poisson of the summed mean, and the summed
/// mean is an integer statistic times a model constant.
class PoissonSumCdf {
 public:
  PoissonSumCdf(double mean_step, std::uint32_t stat_cap);

  [[nodiscard]] std::uint64_t sample(std::uint32_t w, std::uint64_t stat) const noexcept {
    if (stat < stat_cap_) [[likely]] {
      return cdf_row_scan(rows_.data() + stat * kCdfRowLen, w);
    }
    const double mean = mean_step_ * static_cast<double>(stat);
    double u = to_unit32(w);
    if (u <= 0.0) u = 0x1.0p-33;
    const double v = mean + std::sqrt(mean) * inverse_normal_cdf(u) + 0.5;
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
  }

  [[nodiscard]] std::uint32_t stat_cap() const noexcept { return stat_cap_; }

 private:
  double mean_step_;
  std::uint32_t stat_cap_;
  std::vector<std::uint32_t> rows_;  // stat-major threshold rows
};

/// One-word Binomial(n, p) draw table with a fixed success probability:
/// threshold rows for every n whose mean np stays below the normal cutoff,
/// the one-word inverse-CDF normal with continuity correction (clamped to
/// [0, n]) above. The v2 contract's merged form of a per-trial Bernoulli
/// pass: the feature matrix only consumes success TOTALS, and the total of
/// n independent Bernoulli(p) trials is exactly Binomial(n, p), so one
/// word replaces n.
class BinomialCdf {
 public:
  explicit BinomialCdf(double p);

  [[nodiscard]] std::uint64_t sample(std::uint32_t w, std::uint64_t n) const noexcept {
    if (n == 0) return 0;
    if (n < n_cap_) [[likely]] {
      return std::min<std::uint64_t>(cdf_row_scan(rows_.data() + n * kCdfRowLen, w), n);
    }
    const double mean = p_ * static_cast<double>(n);
    double u = to_unit32(w);
    if (u <= 0.0) u = 0x1.0p-33;
    const double v = mean + std::sqrt(mean * (1.0 - p_)) * inverse_normal_cdf(u) + 0.5;
    if (v <= 0.0) return 0;
    return std::min(static_cast<std::uint64_t>(v), n);
  }

  [[nodiscard]] double p() const noexcept { return p_; }
  [[nodiscard]] std::uint32_t n_cap() const noexcept { return n_cap_; }

 private:
  double p_;
  std::uint32_t n_cap_;
  std::vector<std::uint32_t> rows_;  // n-major threshold rows
};

/// Fills rows[i] from means[i]; consecutive equal means share one exp()
/// call, consumes no draws (the 32-bit analog of prepare_poisson_rows,
/// with the kNormalCutoff32 regime split).
void prepare_poisson_rows32(std::span<const double> means, std::span<PoissonRow32> rows);

/// The v2 normal-approximation Poisson draw: two words, Box–Muller, the
/// 32-bit analog of sample_poisson_prepared's large-mean branch. Exposed
/// on its own because the v2 renderer also applies it to merged
/// Poisson-sum draws whose mean clears kNormalCutoff32.
template <typename Engine>
[[gnu::always_inline]] inline std::uint64_t sample_poisson_normal32(Engine& rng, double mean) {
  double u1 = rng.uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-32;
  const double u2 = rng.uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  const double v = mean + std::sqrt(mean) * z + 0.5;
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

/// Draws one Poisson count from a prepared row out of a 32-bit word source
/// (util::Philox4x32 or the trace generator's scratch-buffer cursor —
/// anything with a uint32 operator() and a matching uniform01()). Defines
/// the v2 contract's Poisson draw: Knuth inversion below kNormalCutoff32
/// (one word per chain step), sample_poisson_normal32 above.
template <typename Engine>
[[gnu::always_inline]] inline std::uint64_t sample_poisson_prepared32(
    Engine& rng, const PoissonRow32& row) {
  if (row.mean == 0.0) return 0;
  if (row.mean < kNormalCutoff32) [[likely]] {
    const std::uint32_t w1 = rng();
    if (w1 < row.zero_threshold) return 0;
    double product = to_unit32(w1);
    std::uint64_t k = 0;
    do {
      product *= rng.uniform01();
      ++k;
    } while (product > row.limit);
    return k;
  }
  return sample_poisson_normal32(rng, row.mean);
}

/// out[i] = rng.uniform01(), in order — the batched form of the arrival
/// draws (one per session) in the packet walk.
void sample_uniform01_batch(util::Xoshiro256& rng, std::span<double> out);

/// out[i] = sample_exponential(rng, rate), in order.
void sample_exponential_batch(util::Xoshiro256& rng, double rate, std::span<double> out);

/// Exact integer-threshold table for a capped, floored Pareto count:
/// count(u) = min(floor(1 / u^(1/shape)), cap) with u guarded to 2^-53 —
/// the apps.cpp pareto_count draw. boundary[k-1] holds the largest draw
/// word m with count(to_unit(m)) >= k + 1, so a count is recovered from a
/// raw word with integer compares only (no pow). Boundaries are found once
/// by binary search over the 2^word_bits word space and verified exact.
///
/// word_bits selects the draw grain the table serves: 53 for v1 engine
/// words (m = engine() >> 11, u = m * 2^-53), 32 for v2 Philox words (u =
/// w * 2^-32). The u <= 0 guard stays at 2^-53 in both grains, so word 0
/// maps to the cap either way.
class ParetoCountTable {
 public:
  ParetoCountTable(double shape, std::uint32_t cap, unsigned word_bits = 53);

  /// Count for draw word m (= engine() >> 11). Descending boundary scan;
  /// expected ~1-2 probes for shape > 1.5.
  [[nodiscard]] std::uint32_t count(std::uint64_t m) const noexcept {
    std::uint32_t k = 1;
    while (k < cap_ && m <= boundary_[k - 1]) ++k;
    return k;
  }

  /// Branchless over the first three boundaries (covers ~98% of draws for
  /// shape >= 1.5); falls back to the scan for the tail.
  [[nodiscard]] std::uint32_t count_fast(std::uint64_t m) const noexcept {
    if (cap_ >= 4) [[likely]] {
      if (m > boundary_[2]) [[likely]]
        return 1 + (m <= boundary_[0] ? 1u : 0u) + (m <= boundary_[1] ? 1u : 0u);
      std::uint32_t k = 4;
      while (k < cap_ && m <= boundary_[k - 1]) ++k;
      return k;
    }
    return count(m);
  }

  [[nodiscard]] std::uint32_t cap() const noexcept { return cap_; }

  /// Raw boundary word for count k+1 (callers hoist the first few into
  /// locals to keep a staging loop's compares register-resident).
  [[nodiscard]] std::uint64_t boundary(std::size_t k) const noexcept {
    return boundary_[k];
  }

 private:
  std::vector<std::uint64_t> boundary_;  // descending in k
  std::uint32_t cap_;
};

}  // namespace batch

}  // namespace monohids::stats
