// Heavy-tailed samplers used by the synthetic trace generator.
//
// The population substitute for the paper's proprietary 350-host traces is
// built from log-normal user-intensity meta-distributions, Pareto session
// sizes and Zipf destination popularity — the standard models for enterprise
// traffic tails. All samplers draw from our deterministic Xoshiro256 engine.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace monohids::stats {

/// Log-normal: ln X ~ N(mu, sigma^2).
class LogNormalSampler {
 public:
  LogNormalSampler(double mu, double sigma);
  [[nodiscard]] double sample(util::Xoshiro256& rng) const;
  [[nodiscard]] double median() const;
  [[nodiscard]] double mean() const;

 private:
  double mu_, sigma_;
};

/// Pareto (Type I): P(X > x) = (xm / x)^alpha for x >= xm.
class ParetoSampler {
 public:
  ParetoSampler(double scale_xm, double shape_alpha);
  [[nodiscard]] double sample(util::Xoshiro256& rng) const;
  [[nodiscard]] double scale() const noexcept { return xm_; }
  [[nodiscard]] double shape() const noexcept { return alpha_; }

 private:
  double xm_, alpha_;
};

/// Zipf over ranks {1..n}: P(rank k) ∝ k^-s. Used for destination
/// popularity (a handful of servers receive most connections; the tail of
/// distinct destinations is long).
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double exponent_s);
  [[nodiscard]] std::uint32_t sample(util::Xoshiro256& rng) const;
  [[nodiscard]] std::uint32_t support() const noexcept {
    return static_cast<std::uint32_t>(cdf_.size());
  }

 private:
  std::vector<double> cdf_;  // cumulative probabilities, cdf_.back() == 1
};

/// Poisson sampler (inversion for small mean, PTRS-ish normal approximation
/// cutoff for large mean). Used for per-bin event counts.
[[nodiscard]] std::uint64_t sample_poisson(util::Xoshiro256& rng, double mean);

/// Standard normal via Box–Muller (single value; the pair's second half is
/// discarded for simplicity — generation speed is not the bottleneck).
[[nodiscard]] double sample_standard_normal(util::Xoshiro256& rng);

/// Exponential with the given rate (> 0).
[[nodiscard]] double sample_exponential(util::Xoshiro256& rng, double rate);

/// Uniform integer in [lo, hi] inclusive.
[[nodiscard]] std::uint64_t sample_uniform_int(util::Xoshiro256& rng, std::uint64_t lo,
                                               std::uint64_t hi);

}  // namespace monohids::stats
