// Binary-classification metrics for detector evaluation.
//
// The evaluator reduces each (user, policy, feature) run to a confusion
// matrix over test-week bins; precision / recall / F-measure back the
// paper's F-measure threshold heuristic, and FP/FN rates feed the utility
// U = 1 − [w·FN + (1−w)·FP].
#pragma once

#include <cstdint>

namespace monohids::stats {

/// Counts of a binary confusion matrix.
struct ConfusionCounts {
  std::uint64_t true_positives = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t true_negatives = 0;
  std::uint64_t false_negatives = 0;

  [[nodiscard]] std::uint64_t positives() const noexcept {
    return true_positives + false_negatives;
  }
  [[nodiscard]] std::uint64_t negatives() const noexcept {
    return true_negatives + false_positives;
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return positives() + negatives(); }

  ConfusionCounts& operator+=(const ConfusionCounts& other) noexcept;
};

/// FP rate = FP / (FP + TN); 0 when there are no negatives.
[[nodiscard]] double false_positive_rate(const ConfusionCounts& c) noexcept;

/// FN rate = FN / (FN + TP); 0 when there are no positives.
[[nodiscard]] double false_negative_rate(const ConfusionCounts& c) noexcept;

/// Precision = TP / (TP + FP); 0 when no predicted positives.
[[nodiscard]] double precision(const ConfusionCounts& c) noexcept;

/// Recall = TP / (TP + FN); 0 when no actual positives.
[[nodiscard]] double recall(const ConfusionCounts& c) noexcept;

/// F1 = harmonic mean of precision and recall; 0 when both are 0.
[[nodiscard]] double f_measure(const ConfusionCounts& c) noexcept;

/// The paper's per-host utility U = 1 − [w·FN + (1−w)·FP], w in [0,1].
[[nodiscard]] double utility(double fn_rate, double fp_rate, double w) noexcept;

}  // namespace monohids::stats
