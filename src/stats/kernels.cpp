#include "stats/kernels.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/logging.hpp"

namespace monohids::stats::kernels {

namespace {

std::atomic<const Ops*> g_active{nullptr};
std::atomic<bool> g_batching{true};

const Ops* best_available() noexcept {
  if (const Ops* neon = ops_for(Backend::Neon)) return neon;
  if (const Ops* avx2 = ops_for(Backend::Avx2)) return avx2;
  return detail::scalar_ops();
}

/// Startup selection: MONOHIDS_SIMD override first, then the best back-end
/// the CPU supports. An unavailable or unknown override logs a warning and
/// falls through to detection, so a stale env var can never break a run.
const Ops* detect() noexcept {
  if (const char* env = std::getenv("MONOHIDS_SIMD"); env != nullptr && *env != '\0') {
    const std::string_view requested(env);
    Backend backend = Backend::Scalar;
    bool known = true;
    if (requested == "scalar") backend = Backend::Scalar;
    else if (requested == "avx2") backend = Backend::Avx2;
    else if (requested == "neon") backend = Backend::Neon;
    else known = false;
    if (known) {
      if (const Ops* ops = ops_for(backend)) return ops;
      MONOHIDS_LOG(Warn, "kernels")
          << "MONOHIDS_SIMD=" << requested
          << " requested but that back-end is unavailable on this host; "
             "using runtime detection";
    } else {
      MONOHIDS_LOG(Warn, "kernels")
          << "unknown MONOHIDS_SIMD value '" << requested
          << "' (want scalar|avx2|neon); using runtime detection";
    }
  }
  return best_available();
}

}  // namespace

const Ops& active() noexcept {
  const Ops* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // Benign race: detect() is idempotent and every thread stores the same
    // pointer for a given environment.
    ops = detect();
    g_active.store(ops, std::memory_order_release);
  }
  return *ops;
}

Backend active_backend() noexcept {
  const Ops* ops = &active();
  if (ops == detail::avx2_ops() && ops != nullptr) return Backend::Avx2;
  if (ops == detail::neon_ops() && ops != nullptr) return Backend::Neon;
  return Backend::Scalar;
}

const Ops* ops_for(Backend backend) noexcept {
  switch (backend) {
    case Backend::Scalar:
      return detail::scalar_ops();
    case Backend::Avx2:
      return detail::cpu_supports_avx2() ? detail::avx2_ops() : nullptr;
    case Backend::Neon:
      return detail::neon_ops();
  }
  return nullptr;
}

bool backend_available(Backend backend) noexcept { return ops_for(backend) != nullptr; }

std::string_view backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::Scalar:
      return "scalar";
    case Backend::Avx2:
      return "avx2";
    case Backend::Neon:
      return "neon";
  }
  return "unknown";
}

bool force_backend(Backend backend) noexcept {
  const Ops* ops = ops_for(backend);
  if (ops == nullptr) return false;
  g_active.store(ops, std::memory_order_release);
  return true;
}

void reset_backend() noexcept { g_active.store(detect(), std::memory_order_release); }

bool batching_enabled() noexcept { return g_batching.load(std::memory_order_relaxed); }

void set_batching_enabled(bool enabled) noexcept {
  g_batching.store(enabled, std::memory_order_relaxed);
}

namespace {

/// Largest value the counting sweeps will histogram. Traffic-count features
/// stay far below this; anything bigger falls back to comparison sorting.
constexpr double kCountingMax = 65535.0;

/// True when `v` round-trips through a small unsigned integer without
/// changing its bit pattern (rejects fractions, negatives, out-of-range
/// values and the -0.0 edge case, whose emitted +0.0 would compare equal
/// but differ bitwise).
inline bool is_small_count(double v, std::uint32_t& out) noexcept {
  if (!(v >= 0.0) || v > kCountingMax) return false;
  const auto u = static_cast<std::uint32_t>(v);
  if (static_cast<double>(u) != v) return false;
  if (v == 0.0 && std::signbit(v)) return false;
  out = u;
  return true;
}

thread_local std::vector<std::uint32_t> t_histogram;

}  // namespace

bool sort_counts(std::vector<double>& samples) noexcept {
  if (samples.size() < 64) return false;  // std::sort wins on tiny inputs
  std::uint32_t max_value = 0;
  // Validation pass first: the histogram pass must not run on data that
  // bails halfway through (the caller would std::sort a clean buffer).
  for (double v : samples) {
    std::uint32_t u;
    if (!is_small_count(v, u)) return false;
    if (u > max_value) max_value = u;
  }
  auto& hist = t_histogram;
  hist.assign(static_cast<std::size_t>(max_value) + 1, 0);
  for (double v : samples) ++hist[static_cast<std::uint32_t>(v)];
  std::size_t i = 0;
  for (std::size_t value = 0; value <= max_value; ++value) {
    const double d = static_cast<double>(value);
    for (std::uint32_t c = hist[value]; c != 0; --c) samples[i++] = d;
  }
  return true;
}

bool counting_merge(std::span<const std::span<const double>> parts,
                    std::vector<double>& out) {
  std::size_t total = 0;
  std::uint32_t max_value = 0;
  for (const auto& p : parts) {
    total += p.size();
    if (p.empty()) continue;
    // Ascending parts: front/back bound the whole span, so one check per
    // part rejects negative or oversized data before the element scan.
    std::uint32_t u;
    if (!is_small_count(p.front(), u) || !is_small_count(p.back(), u)) return false;
    if (u > max_value) max_value = u;
  }
  if (total < 256) return false;  // heap merge wins on tiny pools
  auto& hist = t_histogram;
  hist.assign(static_cast<std::size_t>(max_value) + 1, 0);
  for (const auto& p : parts) {
    for (double v : p) {
      std::uint32_t u;
      if (!is_small_count(v, u)) return false;  // interior fraction/-0.0: bail
      ++hist[u];
    }
  }
  out.clear();
  out.reserve(total);
  for (std::size_t value = 0; value <= max_value; ++value) {
    const double d = static_cast<double>(value);
    for (std::uint32_t c = hist[value]; c != 0; --c) out.push_back(d);
  }
  return true;
}

bool build_rank_table(std::span<const double> sorted_arena,
                      std::vector<std::uint32_t>& cum) {
  cum.clear();
  const std::size_t n = sorted_arena.size();
  if (n < 64) return false;  // per-query binary search is already cheap
  // Ascending arena: front/back bound the value range, so two checks reject
  // negative or oversized data before the element scan.
  std::uint32_t u;
  if (!is_small_count(sorted_arena.front(), u) ||
      !is_small_count(sorted_arena.back(), u)) {
    return false;
  }
  cum.assign(static_cast<std::size_t>(u) + 1, 0);
  for (double v : sorted_arena) {
    std::uint32_t uv;
    if (!is_small_count(v, uv)) {  // interior fraction or -0.0: bail
      cum.clear();
      return false;
    }
    ++cum[uv];
  }
  std::uint32_t acc = 0;
  for (std::uint32_t& c : cum) {
    acc += c;
    c = acc;
  }
  return true;
}

namespace detail {

bool cpu_supports_avx2() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // The AVX2 TU also emits FMA (exact fused ops, matching the scalar
  // back-end's std::fma), so both feature bits gate the dispatch.
  return __builtin_cpu_supports("avx2") != 0 && __builtin_cpu_supports("fma") != 0;
#else
  return false;
#endif
}

}  // namespace detail

}  // namespace monohids::stats::kernels
