#include "stats/moments.hpp"

#include <algorithm>
#include <cmath>

namespace monohids::stats {

void RunningMoments::add(double value) noexcept {
  ++n_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void RunningMoments::merge(const RunningMoments& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningMoments::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningMoments::sample_variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningMoments::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace monohids::stats
