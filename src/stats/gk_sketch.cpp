#include "stats/gk_sketch.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace monohids::stats {

GkSketch::GkSketch(double epsilon) : epsilon_(epsilon) {
  MONOHIDS_EXPECT(epsilon > 0.0 && epsilon < 0.5, "GK epsilon must be in (0, 0.5)");
}

void GkSketch::add(double value) {
  MONOHIDS_EXPECT(std::isfinite(value), "GK values must be finite");
  ++n_;

  // Find insertion point (first tuple with value >= new value).
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), value,
                             [](const Tuple& t, double v) { return t.value < v; });

  std::uint64_t delta = 0;
  if (it != tuples_.begin() && it != tuples_.end()) {
    // Interior insertion: uncertainty is the current band width.
    delta = static_cast<std::uint64_t>(
        std::floor(2.0 * epsilon_ * static_cast<double>(n_)));
    if (delta > 0) --delta;
  }
  tuples_.insert(it, Tuple{value, 1, delta});

  // Compress periodically; every 1/(2ε) insertions keeps amortized O(1).
  const auto period = static_cast<std::uint64_t>(std::ceil(1.0 / (2.0 * epsilon_)));
  if (n_ % period == 0) compress();
}

void GkSketch::compress() {
  if (tuples_.size() < 3) return;
  const auto threshold =
      static_cast<std::uint64_t>(std::floor(2.0 * epsilon_ * static_cast<double>(n_)));
  // Merge right-to-left, never touching the extreme tuples (they pin min/max).
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  out.push_back(tuples_.back());
  for (std::size_t idx = tuples_.size() - 1; idx-- > 1;) {
    Tuple& successor = out.back();
    const Tuple& current = tuples_[idx];
    if (current.g + successor.g + successor.delta < threshold) {
      successor.g += current.g;  // absorb current into its successor
    } else {
      out.push_back(current);
    }
  }
  out.push_back(tuples_.front());
  std::reverse(out.begin(), out.end());
  tuples_ = std::move(out);
}

double GkSketch::quantile(double q) const {
  MONOHIDS_EXPECT(n_ > 0, "GK quantile requires observations");
  MONOHIDS_EXPECT(q >= 0.0 && q <= 1.0, "quantile probability must be in [0,1]");
  const double target_rank = std::max(1.0, std::ceil(q * static_cast<double>(n_)));
  const double tolerance = epsilon_ * static_cast<double>(n_);
  // Canonical GK query: return the last tuple whose maximum possible rank
  // stays within target + tolerance.
  std::uint64_t min_rank = 0;
  double best = tuples_.front().value;
  for (const Tuple& t : tuples_) {
    min_rank += t.g;
    if (static_cast<double>(min_rank + t.delta) > target_rank + tolerance) break;
    best = t.value;
  }
  return best;
}

}  // namespace monohids::stats
