#include "stats/gk_sketch.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "stats/kernels.hpp"
#include "util/error.hpp"

namespace monohids::stats {

namespace {

constexpr std::uint32_t kSerdeMagic = 0x4753'4b31;  // "GSK1"

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  MONOHIDS_ENSURE(in.good(), "GK sketch image truncated");
  return value;
}

}  // namespace

GkSketch::GkSketch(double epsilon) : epsilon_(epsilon) {
  MONOHIDS_EXPECT(epsilon > 0.0 && epsilon < 0.5, "GK epsilon must be in (0, 0.5)");
}

void GkSketch::add(double value) {
  MONOHIDS_EXPECT(std::isfinite(value), "GK values must be finite");
  ++n_;

  // Find insertion point (first tuple with value >= new value).
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), value,
                             [](const Tuple& t, double v) { return t.value < v; });

  std::uint64_t delta = 0;
  if (it != tuples_.begin() && it != tuples_.end()) {
    // Interior insertion: uncertainty is the current band width.
    delta = static_cast<std::uint64_t>(
        std::floor(2.0 * epsilon_ * static_cast<double>(n_)));
    if (delta > 0) --delta;
  }
  tuples_.insert(it, Tuple{value, 1, delta});

  // Compress periodically; every 1/(2ε) insertions keeps amortized O(1).
  const auto period = static_cast<std::uint64_t>(std::ceil(1.0 / (2.0 * epsilon_)));
  if (n_ % period == 0) compress();
}

GkSketch GkSketch::from_sorted(std::span<const double> sorted, double epsilon) {
  GkSketch sketch(epsilon);
  if (sorted.empty()) return sketch;
  // Run-length tuples over the sorted stream: every tuple's rank is exact
  // (delta = 0), so the pre-compression summary is a lossless rank map and
  // one compress() lands it inside the ε band. Tie runs longer than the
  // band are split across several tuples of the same value — the query
  // guarantee needs g + delta <= 2εn for every tuple, and a split run still
  // lets the scan stop *inside* the run and answer with the run's value.
  const auto n = static_cast<std::uint64_t>(sorted.size());
  const auto band = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::floor(2.0 * epsilon * static_cast<double>(n))));
  const auto emit_run = [&](double value, std::uint64_t run) {
    while (run > band) {
      sketch.tuples_.push_back(Tuple{value, band, 0});
      run -= band;
    }
    sketch.tuples_.push_back(Tuple{value, run, 0});
  };
  sketch.tuples_.reserve(64);
  double current = sorted.front();
  MONOHIDS_EXPECT(std::isfinite(current), "GK values must be finite");
  std::uint64_t run = 0;
  for (const double v : sorted) {
    MONOHIDS_EXPECT(std::isfinite(v), "GK values must be finite");
    MONOHIDS_EXPECT(v >= current, "from_sorted requires ascending input");
    if (v == current) {
      ++run;
      continue;
    }
    emit_run(current, run);
    current = v;
    run = 1;
  }
  emit_run(current, run);
  sketch.n_ = n;
  sketch.compress();
  return sketch;
}

void GkSketch::compress() {
  if (tuples_.size() < 3) return;
  const auto threshold =
      static_cast<std::uint64_t>(std::floor(2.0 * epsilon_ * static_cast<double>(n_)));
  // Merge right-to-left, never touching the extreme tuples (they pin min/max).
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  out.push_back(tuples_.back());
  for (std::size_t idx = tuples_.size() - 1; idx-- > 1;) {
    Tuple& successor = out.back();
    const Tuple& current = tuples_[idx];
    if (current.g + successor.g + successor.delta < threshold) {
      successor.g += current.g;  // absorb current into its successor
    } else {
      out.push_back(current);
    }
  }
  out.push_back(tuples_.front());
  std::reverse(out.begin(), out.end());
  tuples_ = std::move(out);
}

double GkSketch::quantile(double q) const {
  MONOHIDS_EXPECT(n_ > 0, "GK quantile requires observations");
  MONOHIDS_EXPECT(q >= 0.0 && q <= 1.0, "quantile probability must be in [0,1]");
  const double target_rank = std::max(1.0, std::ceil(q * static_cast<double>(n_)));
  const double tolerance = epsilon_ * static_cast<double>(n_);
  // Canonical GK query: return the last tuple whose maximum possible rank
  // stays within target + tolerance.
  std::uint64_t min_rank = 0;
  double best = tuples_.front().value;
  for (const Tuple& t : tuples_) {
    min_rank += t.g;
    if (static_cast<double>(min_rank + t.delta) > target_rank + tolerance) break;
    best = t.value;
  }
  return best;
}

void GkSketch::quantile_batch(std::span<const double> qs, std::span<double> out) const {
  MONOHIDS_EXPECT(qs.size() == out.size(), "quantile_batch size mismatch");
  if (qs.empty()) return;
  MONOHIDS_EXPECT(n_ > 0, "GK quantile requires observations");

  // The per-call scan stops at the first tuple whose max possible rank
  // exceeds target + tolerance. Its prefix maximum is a monotone envelope
  // with the same first crossing, so the whole ascending query batch is one
  // rank_sorted merge-scan (#{envelope <= target + tol} = crossing index)
  // on the dispatched back-end.
  std::vector<double> envelope(tuples_.size());
  std::uint64_t min_rank = 0;
  double running_max = 0.0;
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    min_rank += tuples_[i].g;
    running_max =
        std::max(running_max, static_cast<double>(min_rank + tuples_[i].delta));
    envelope[i] = running_max;
  }

  const double tolerance = epsilon_ * static_cast<double>(n_);
  std::vector<double> limits(qs.size());
  double previous = 0.0;
  for (std::size_t j = 0; j < qs.size(); ++j) {
    const double q = qs[j];
    MONOHIDS_EXPECT(q >= 0.0 && q <= 1.0, "quantile probability must be in [0,1]");
    MONOHIDS_EXPECT(j == 0 || q >= previous, "quantile_batch requires ascending qs");
    previous = q;
    limits[j] = std::max(1.0, std::ceil(q * static_cast<double>(n_))) + tolerance;
  }

  std::vector<std::uint32_t> crossing(qs.size());
  kernels::active().rank_sorted(envelope, limits, 0.0, crossing.data());
  for (std::size_t j = 0; j < qs.size(); ++j) {
    const std::size_t idx = crossing[j] == 0 ? 0 : crossing[j] - 1;
    out[j] = tuples_[idx].value;
  }
}

void GkSketch::merge(const GkSketch& other) {
  MONOHIDS_EXPECT(epsilon_ == other.epsilon_, "GK merge requires matching epsilon");
  if (other.n_ == 0) return;
  if (n_ == 0) {
    tuples_ = other.tuples_;
    n_ = other.n_;
    return;
  }

  // Mergeable-summaries interleave (Agarwal et al., PODS'12, applied to GK
  // rank envelopes): a tuple keeps its own rank span and inherits the
  // uncertainty of the other summary around its value —
  //   rmin' = rmin(t) + rmin(last other tuple consumed before t),
  //   rmax' = rmax(t) + rmax(next other tuple) - 1   (or + n_other at the end).
  // Summed uncertainties stay within 2ε·(n_a + n_b), so the merged sketch
  // keeps the ε-rank guarantee for any merge tree; compress() then shrinks
  // the tuple list back to the ε band.
  const std::vector<Tuple>& a = tuples_;
  const std::vector<Tuple>& b = other.tuples_;
  std::vector<Tuple> merged;
  merged.reserve(a.size() + b.size());

  std::size_t i = 0, j = 0;
  std::uint64_t rmin_a = 0, rmin_b = 0;   // rmin of the last consumed tuple per side
  std::uint64_t emitted_rmin = 0;         // rmin of the last emitted merged tuple
  while (i < a.size() || j < b.size()) {
    const bool take_a =
        j == b.size() || (i < a.size() && a[i].value <= b[j].value);
    std::uint64_t rmin_m = 0, rmax_m = 0;
    double value = 0.0;
    if (take_a) {
      value = a[i].value;
      rmin_a += a[i].g;
      rmin_m = rmin_a + rmin_b;
      rmax_m = j < b.size() ? rmin_a + a[i].delta + (rmin_b + b[j].g + b[j].delta) - 1
                            : rmin_a + a[i].delta + other.n_;
      ++i;
    } else {
      value = b[j].value;
      rmin_b += b[j].g;
      rmin_m = rmin_a + rmin_b;
      rmax_m = i < a.size() ? rmin_b + b[j].delta + (rmin_a + a[i].g + a[i].delta) - 1
                            : rmin_b + b[j].delta + n_;
      ++j;
    }
    merged.push_back(Tuple{value, rmin_m - emitted_rmin, rmax_m - rmin_m});
    emitted_rmin = rmin_m;
  }

  tuples_ = std::move(merged);
  n_ += other.n_;
  compress();
}

void GkSketch::serialize(std::ostream& out) const {
  write_pod(out, kSerdeMagic);
  write_pod(out, epsilon_);
  write_pod(out, n_);
  write_pod(out, static_cast<std::uint64_t>(tuples_.size()));
  for (const Tuple& t : tuples_) {
    write_pod(out, t.value);
    write_pod(out, t.g);
    write_pod(out, t.delta);
  }
  MONOHIDS_ENSURE(out.good(), "failed writing GK sketch image");
}

GkSketch GkSketch::deserialize(std::istream& in) {
  MONOHIDS_ENSURE(read_pod<std::uint32_t>(in) == kSerdeMagic,
                  "not a GK sketch image (bad magic)");
  const double epsilon = read_pod<double>(in);
  MONOHIDS_ENSURE(std::isfinite(epsilon) && epsilon > 0.0 && epsilon < 0.5,
                  "GK sketch image: epsilon out of range");
  GkSketch sketch(epsilon);
  const auto n = read_pod<std::uint64_t>(in);
  const auto tuple_count = read_pod<std::uint64_t>(in);
  MONOHIDS_ENSURE(tuple_count <= n, "GK sketch image: more tuples than observations");
  MONOHIDS_ENSURE((n == 0) == (tuple_count == 0),
                  "GK sketch image: observation/tuple count mismatch");

  // Bounded incremental reserve: tuple_count is untrusted, so grow as real
  // bytes arrive instead of trusting the header with one huge allocation.
  std::uint64_t total_g = 0;
  double previous = -std::numeric_limits<double>::infinity();
  for (std::uint64_t k = 0; k < tuple_count; ++k) {
    Tuple t{};
    t.value = read_pod<double>(in);
    t.g = read_pod<std::uint64_t>(in);
    t.delta = read_pod<std::uint64_t>(in);
    MONOHIDS_ENSURE(std::isfinite(t.value), "GK sketch image: non-finite value");
    MONOHIDS_ENSURE(t.value >= previous, "GK sketch image: values not ascending");
    MONOHIDS_ENSURE(t.g >= 1 && t.g <= n - total_g,
                    "GK sketch image: rank gaps exceed observation count");
    MONOHIDS_ENSURE(t.delta <= n, "GK sketch image: uncertainty exceeds n");
    previous = t.value;
    total_g += t.g;
    sketch.tuples_.push_back(t);
  }
  MONOHIDS_ENSURE(total_g == n, "GK sketch image: rank gaps do not sum to n");
  sketch.n_ = n;
  return sketch;
}

}  // namespace monohids::stats
