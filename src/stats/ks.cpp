#include "stats/ks.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace monohids::stats {

double ks_statistic(std::span<const double> a, std::span<const double> b) {
  MONOHIDS_EXPECT(!a.empty() && !b.empty(), "KS needs two non-empty samples");
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  // Merge-walk both sorted samples, tracking the CDF gap at every step.
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t ia = 0, ib = 0;
  double d = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    d = std::max(d, std::fabs(static_cast<double>(ia) / na -
                              static_cast<double>(ib) / nb));
  }
  return d;
}

double ks_statistic(const EmpiricalDistribution& a, const EmpiricalDistribution& b) {
  return ks_statistic(a.samples(), b.samples());
}

}  // namespace monohids::stats
