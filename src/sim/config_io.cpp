#include "sim/config_io.hpp"

#include <charconv>
#include <functional>
#include <map>
#include <sstream>

#include "util/error.hpp"

namespace monohids::sim {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

double parse_number(std::string_view key, std::string_view text) {
  double value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  MONOHIDS_ENSURE(ec == std::errc{} && ptr == text.data() + text.size(),
                  "malformed value for '" + std::string(key) + "': " + std::string(text));
  return value;
}

}  // namespace

std::string serialize_scenario_config(const ScenarioConfig& config) {
  std::ostringstream os;
  os.precision(15);
  const auto& p = config.population;
  const auto& g = config.generator;
  os << "# monohids scenario configuration\n"
     << "# population\n"
     << "users = " << p.user_count << '\n'
     << "seed = " << p.seed << '\n'
     << "weeks = " << p.weeks << '\n'
     << "heavy_fraction = " << p.heavy_fraction << '\n'
     << "intensity_log_mu = " << p.intensity_log_mu << '\n'
     << "intensity_log_sigma = " << p.intensity_log_sigma << '\n'
     << "heavy_boost_log_mu = " << p.heavy_boost_log_mu << '\n'
     << "heavy_boost_log_sigma = " << p.heavy_boost_log_sigma << '\n'
     << "extreme_fraction_of_heavy = " << p.extreme_fraction_of_heavy << '\n'
     << "extreme_boost_log_mu = " << p.extreme_boost_log_mu << '\n'
     << "extreme_boost_log_sigma = " << p.extreme_boost_log_sigma << '\n'
     << "app_mix_log_sigma = " << p.app_mix_log_sigma << '\n'
     << "dns_mix_log_sigma = " << p.dns_mix_log_sigma << '\n'
     << "weekly_drift_log_sigma = " << p.weekly_drift_log_sigma << '\n'
     << "weekly_trend = " << p.weekly_trend << '\n'
     << "subnet_base = " << p.subnet_base.to_string() << '\n'
     << "# generator\n"
     << "bin_minutes = " << g.grid.width() / util::kMicrosPerMinute << '\n'
     << "episode_log_mu = " << g.episode_log_mu << '\n'
     << "distinct_pool_factor = " << g.distinct_pool_factor << '\n'
     << "scenario_version = "
     << (g.scenario_version == trace::ScenarioVersion::V2 ? 2 : 1) << '\n'
     << "fidelity = " << (config.fidelity == TraceFidelity::Packets ? "packets" : "bins")
     << '\n';
  return os.str();
}

ScenarioConfig parse_scenario_config(std::string_view text) {
  ScenarioConfig config;
  auto& p = config.population;
  auto& g = config.generator;

  // One setter per key; string-valued keys handle their own parsing.
  const std::map<std::string_view, std::function<void(std::string_view, std::string_view)>>
      setters{
          {"users",
           [&](auto k, auto v) {
             const double n = parse_number(k, v);
             MONOHIDS_ENSURE(n >= 1 && n <= 1e7, "users out of range");
             p.user_count = static_cast<std::uint32_t>(n);
           }},
          {"seed",
           [&](auto k, auto v) { p.seed = static_cast<std::uint64_t>(parse_number(k, v)); }},
          {"weeks",
           [&](auto k, auto v) {
             const double n = parse_number(k, v);
             MONOHIDS_ENSURE(n >= 1 && n <= 520, "weeks out of range");
             p.weeks = static_cast<std::uint32_t>(n);
             g.weeks = p.weeks;
           }},
          {"heavy_fraction",
           [&](auto k, auto v) {
             p.heavy_fraction = parse_number(k, v);
             MONOHIDS_ENSURE(p.heavy_fraction >= 0 && p.heavy_fraction <= 1,
                             "heavy_fraction out of range");
           }},
          {"intensity_log_mu",
           [&](auto k, auto v) { p.intensity_log_mu = parse_number(k, v); }},
          {"intensity_log_sigma",
           [&](auto k, auto v) { p.intensity_log_sigma = parse_number(k, v); }},
          {"heavy_boost_log_mu",
           [&](auto k, auto v) { p.heavy_boost_log_mu = parse_number(k, v); }},
          {"heavy_boost_log_sigma",
           [&](auto k, auto v) { p.heavy_boost_log_sigma = parse_number(k, v); }},
          {"extreme_fraction_of_heavy",
           [&](auto k, auto v) { p.extreme_fraction_of_heavy = parse_number(k, v); }},
          {"extreme_boost_log_mu",
           [&](auto k, auto v) { p.extreme_boost_log_mu = parse_number(k, v); }},
          {"extreme_boost_log_sigma",
           [&](auto k, auto v) { p.extreme_boost_log_sigma = parse_number(k, v); }},
          {"app_mix_log_sigma",
           [&](auto k, auto v) { p.app_mix_log_sigma = parse_number(k, v); }},
          {"dns_mix_log_sigma",
           [&](auto k, auto v) { p.dns_mix_log_sigma = parse_number(k, v); }},
          {"weekly_drift_log_sigma",
           [&](auto k, auto v) { p.weekly_drift_log_sigma = parse_number(k, v); }},
          {"weekly_trend", [&](auto k, auto v) { p.weekly_trend = parse_number(k, v); }},
          {"subnet_base",
           [&](auto, auto v) { p.subnet_base = net::Ipv4Address::parse(std::string(v)); }},
          {"bin_minutes",
           [&](auto k, auto v) {
             const double n = parse_number(k, v);
             MONOHIDS_ENSURE(n >= 1 && n <= 24 * 60, "bin_minutes out of range");
             g.grid = util::BinGrid::minutes(static_cast<std::uint64_t>(n));
           }},
          {"episode_log_mu",
           [&](auto k, auto v) { g.episode_log_mu = parse_number(k, v); }},
          {"distinct_pool_factor",
           [&](auto k, auto v) { g.distinct_pool_factor = parse_number(k, v); }},
          {"scenario_version",
           [&](auto k, auto v) {
             const double n = parse_number(k, v);
             MONOHIDS_ENSURE(n == 1 || n == 2, "scenario_version must be 1 or 2");
             g.scenario_version = n == 2 ? trace::ScenarioVersion::V2
                                         : trace::ScenarioVersion::V1;
           }},
          {"fidelity",
           [&](auto, auto v) {
             if (v == "bins") {
               config.fidelity = TraceFidelity::Bins;
             } else if (v == "packets") {
               config.fidelity = TraceFidelity::Packets;
             } else {
               throw InputError("unknown fidelity: " + std::string(v));
             }
           }},
      };

  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = trim(text.substr(start, end - start));
    start = end + 1;
    if (line.empty() || line.front() == '#') continue;

    const auto eq = line.find('=');
    MONOHIDS_ENSURE(eq != std::string_view::npos,
                    "config line is not 'key = value': " + std::string(line));
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    const auto it = setters.find(key);
    MONOHIDS_ENSURE(it != setters.end(), "unknown config key: " + std::string(key));
    it->second(key, value);
  }
  return config;
}

}  // namespace monohids::sim
