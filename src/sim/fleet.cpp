#include "sim/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/metrics.hpp"
#include "stats/kernels.hpp"
#include "util/error.hpp"
#include "util/rss.hpp"
#include "util/thread_pool.hpp"

namespace monohids::sim {

namespace {

/// The ascending quantile grid of a fleet row: k / (m - 1), endpoints
/// included so a row's first/last entries track the user's min/max.
std::vector<double> grid_quantiles(std::uint32_t grid_points) {
  std::vector<double> qs(grid_points);
  for (std::uint32_t k = 0; k < grid_points; ++k) {
    qs[k] = static_cast<double>(k) / static_cast<double>(grid_points - 1);
  }
  return qs;
}

struct FleetMetrics {
  obs::Histogram shard_latency;
  obs::Counter users_total;
  obs::Counter shards_total;
  obs::Counter sketch_bytes_total;
  obs::Gauge peak_rss;

  static FleetMetrics make() {
    auto& registry = obs::MetricsRegistry::global();
    return FleetMetrics{
        registry.histogram("fleet.shard_latency_ms", obs::latency_buckets_ms()),
        registry.counter("fleet.users_total"),
        registry.counter("fleet.shards_total"),
        registry.counter("fleet.sketch_bytes_total"),
        registry.gauge("fleet.peak_rss_kib"),
    };
  }
};

}  // namespace

std::size_t FleetScenario::slot(features::FeatureKind feature, std::uint32_t week) const {
  MONOHIDS_EXPECT(week < week_count(), "week beyond the fleet horizon");
  return features::index_of(feature) * week_count() + week;
}

std::span<const float> FleetScenario::rows(features::FeatureKind feature,
                                           std::uint32_t week) const {
  return store_[slot(feature, week)];
}

std::span<const float> FleetScenario::row(features::FeatureKind feature,
                                          std::uint32_t week, std::uint32_t user) const {
  MONOHIDS_EXPECT(user < user_count(), "user id out of range");
  return rows(feature, week).subspan(std::size_t{user} * config_.grid_points,
                                     config_.grid_points);
}

const stats::GkSketch& FleetScenario::pooled(features::FeatureKind feature,
                                             std::uint32_t week) const {
  return pooled_[slot(feature, week)];
}

std::size_t FleetScenario::store_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& block : store_) total += block.capacity() * sizeof(float);
  return total;
}

std::size_t FleetScenario::pooled_sketch_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& sketch : pooled_) total += sketch.memory_bytes();
  return total;
}

FleetAnalysisCache& FleetScenario::analysis() const {
  if (analysis_cache_ == nullptr) {
    analysis_cache_ = std::make_shared<FleetAnalysisCache>(*this);
  }
  return *analysis_cache_;
}

FleetScenario build_fleet_scenario(const FleetConfig& config) {
  MONOHIDS_EXPECT(config.shard_size > 0, "shard size must be positive");
  MONOHIDS_EXPECT(config.grid_points >= 2, "quantile grid needs at least 2 points");
  MONOHIDS_EXPECT(config.sketch_epsilon > 0.0 && config.sketch_epsilon < 0.5,
                  "sketch epsilon must be in (0, 0.5)");
  const auto grid_width = config.base.generator.grid.width();
  MONOHIDS_ENSURE(grid_width > 0 && util::kMicrosPerWeek % grid_width == 0,
                  "fleet mode requires a week-aligned bin grid");

  FleetScenario fleet;
  fleet.config_ = config;
  fleet.bins_per_week_ = static_cast<std::uint32_t>(util::kMicrosPerWeek / grid_width);

  const std::uint32_t users = config.base.population.user_count;
  const std::uint32_t weeks = config.base.generator.weeks;
  const std::uint32_t m = config.grid_points;
  const double eps = config.sketch_epsilon;
  const std::size_t cells = std::size_t{features::kFeatureCount} * weeks;

  fleet.store_.resize(cells);
  for (auto& block : fleet.store_) block.resize(std::size_t{users} * m);
  fleet.pooled_.assign(cells, stats::GkSketch(eps));

  const trace::PopulationBuilder builder(config.base.population);
  const trace::TraceGenerator generator(config.base.generator);
  const std::vector<double> qs = grid_quantiles(m);

  FleetMetrics metrics = FleetMetrics::make();
  std::uint64_t folded_sketch_bytes = 0;

  // V2 render geometry: a wave of users' matrices stays resident at once
  // (bounded by a flat byte budget), and the wave renders as flattened
  // (user, bin-tile) parallel_for items — the counter-mode contract makes
  // every tile an independent work unit, so small shards and stragglers
  // still keep every worker busy. The tile size is a pure partition knob
  // (output invariant by contract); one week per tile is the natural grain
  // since the sketch fold consumes week slices.
  const bool v2 = config.base.generator.scenario_version == trace::ScenarioVersion::V2;
  const std::uint64_t total_bins =
      generator.config().grid.bin_count(generator.config().horizon());
  const std::uint64_t tile_bins =
      config.base.generator.v2_bin_tile != 0
          ? std::min<std::uint64_t>(config.base.generator.v2_bin_tile, total_bins)
          : fleet.bins_per_week_;
  const std::uint64_t tiles_per_user = (total_bins + tile_bins - 1) / tile_bins;
  constexpr std::size_t kWaveMatrixBudget = std::size_t{64} << 20;  // bytes
  const std::size_t user_matrix_bytes =
      std::size_t{features::kFeatureCount} * total_bins * sizeof(double);
  const std::uint32_t wave_size = static_cast<std::uint32_t>(std::clamp<std::size_t>(
      kWaveMatrixBudget / std::max<std::size_t>(user_matrix_bytes, 1), 1, 4096));

  const std::uint32_t shard_count = (users + config.shard_size - 1) / config.shard_size;
  for (std::uint32_t shard = 0; shard < shard_count; ++shard) {
    const auto started = std::chrono::steady_clock::now();
    const std::uint32_t first = shard * config.shard_size;
    const std::uint32_t count = std::min(config.shard_size, users - first);

    // Per-user sketches land in local slots during the parallel pass; the
    // pooled fold below consumes them sequentially in user-index order, so
    // the pooled result is independent of shard layout and thread count.
    std::vector<stats::GkSketch> shard_sketches(std::size_t{count} * cells,
                                                stats::GkSketch(eps));

    // Reduce one rendered user into their row slots and sketch slot.
    const auto reduce_user = [&](std::uint32_t id, std::uint32_t local,
                                 const features::FeatureMatrix& matrix) {
      std::vector<double> scratch;
      std::vector<double> row(m);
      for (features::FeatureKind feature : features::kAllFeatures) {
        for (std::uint32_t week = 0; week < weeks; ++week) {
          const auto slice = matrix.of(feature).week_slice(week);
          MONOHIDS_EXPECT(!slice.empty(), "week beyond the generated horizon");
          scratch.assign(slice.begin(), slice.end());
          if (!stats::kernels::sort_counts(scratch)) {
            std::sort(scratch.begin(), scratch.end());
          }
          stats::GkSketch sketch = stats::GkSketch::from_sorted(scratch, eps);
          sketch.quantile_batch(qs, row);
          const std::size_t cell = std::size_t{features::index_of(feature)} * weeks + week;
          float* out = fleet.store_[cell].data() + std::size_t{id} * m;
          for (std::uint32_t k = 0; k < m; ++k) {
            out[k] = static_cast<float>(row[k]);
          }
          shard_sketches[std::size_t{local} * cells + cell] = std::move(sketch);
        }
      }
    };

    if (v2) {
      for (std::uint32_t wave_first = 0; wave_first < count; wave_first += wave_size) {
        const std::uint32_t wave_count = std::min(wave_size, count - wave_first);
        std::vector<trace::UserProfile> profiles(wave_count);
        std::vector<features::FeatureMatrix> matrices(wave_count);
        util::parallel_for(
            wave_count,
            [&](std::size_t i) {
              profiles[i] =
                  builder.build(static_cast<std::uint32_t>(first + wave_first + i));
              for (auto& series : matrices[i].series) {
                series = features::BinnedSeries(generator.config().grid,
                                                generator.config().horizon());
              }
            },
            config.threads);
        util::parallel_for(
            std::size_t{wave_count} * tiles_per_user,
            [&](std::size_t item) {
              const std::size_t u = item / tiles_per_user;
              const std::uint64_t begin = (item % tiles_per_user) * tile_bins;
              const std::uint64_t end = std::min(total_bins, begin + tile_bins);
              generator.render_features_v2_tile(profiles[u], begin, end, matrices[u]);
            },
            config.threads);
        util::parallel_for(
            wave_count,
            [&](std::size_t i) {
              reduce_user(static_cast<std::uint32_t>(first + wave_first + i),
                          static_cast<std::uint32_t>(wave_first + i), matrices[i]);
              matrices[i] = {};  // release the wave slot before the next wave
            },
            config.threads);
      }
    } else {
      util::parallel_for(
          count,
          [&](std::size_t local) {
            const auto id = static_cast<std::uint32_t>(first + local);
            const trace::UserProfile profile = builder.build(id);
            const features::FeatureMatrix matrix = generator.generate_features(profile);
            reduce_user(id, static_cast<std::uint32_t>(local), matrix);
          },
          config.threads);
    }

    for (std::uint32_t local = 0; local < count; ++local) {
      for (std::size_t cell = 0; cell < cells; ++cell) {
        const stats::GkSketch& sketch = shard_sketches[local * cells + cell];
        folded_sketch_bytes += sketch.memory_bytes();
        fleet.pooled_[cell].merge(sketch);
      }
    }

    if constexpr (obs::kEnabled) {
      const auto elapsed = std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started);
      metrics.shard_latency.observe(elapsed.count());
      metrics.users_total.add(count);
      metrics.shards_total.inc();
      metrics.peak_rss.set(static_cast<std::int64_t>(util::peak_rss_kib()));
    }
  }
  if constexpr (obs::kEnabled) {
    metrics.sketch_bytes_total.add(folded_sketch_bytes);
  }
  return fleet;
}

FleetAnalysisCache::FleetAnalysisCache(const FleetScenario& fleet,
                                       std::size_t max_resident_weeks)
    : fleet_(fleet), max_resident_(std::max<std::size_t>(1, max_resident_weeks)) {}

std::shared_ptr<const hids::DistributionCache::DistributionSet> FleetAnalysisCache::week(
    features::FeatureKind feature, std::uint32_t week, unsigned threads) {
  const std::size_t key =
      std::size_t{features::index_of(feature)} * fleet_.week_count() + week;

  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = resident_.begin(); it != resident_.end(); ++it) {
    if (it->first == key) {
      auto holder = it->second;  // refresh LRU position (most recent last)
      resident_.erase(it);
      resident_.emplace_back(key, holder);
      return {holder, &holder->set};
    }
  }

  // Expand the float rows into one shared double arena with per-user views.
  // Rank tables make the downstream threshold sweeps O(1) per query.
  const std::span<const float> rows = fleet_.rows(feature, week);
  const std::uint32_t users = fleet_.user_count();
  const std::uint32_t m = fleet_.grid_points();
  auto holder = std::make_shared<Expansion>();
  holder->arena.resize(rows.size());
  holder->set.resize(users);
  std::vector<double>& arena = holder->arena;
  DistributionSet& set = holder->set;
  util::parallel_for(
      users,
      [&](std::size_t u) {
        const std::size_t offset = u * m;
        for (std::uint32_t k = 0; k < m; ++k) {
          arena[offset + k] = static_cast<double>(rows[offset + k]);
        }
        set[u] = stats::EmpiricalDistribution::view_of_sorted(
            std::span<const double>(arena.data() + offset, m), true);
      },
      threads);

  resident_.emplace_back(key, holder);
  if (resident_.size() > max_resident_) resident_.erase(resident_.begin());
  return {holder, &holder->set};
}

std::shared_ptr<const hids::ThresholdAssignment> FleetAnalysisCache::thresholds(
    features::FeatureKind feature, std::uint32_t train_week,
    const hids::Grouper& grouper, const hids::ThresholdHeuristic& heuristic,
    const hids::AttackModel* attack, unsigned threads) {
  const auto train = week(feature, train_week, threads);
  return std::make_shared<const hids::ThresholdAssignment>(
      hids::assign_thresholds(*train, grouper, heuristic, attack, threads));
}

std::shared_ptr<const hids::AttackModel> FleetAnalysisCache::attack_model(
    features::FeatureKind feature, std::uint32_t train_week, std::uint32_t steps,
    unsigned threads) {
  const auto train = week(feature, train_week, threads);
  const double max_size = hids::max_observed_value(*train);
  return std::make_shared<const hids::AttackModel>(
      hids::log_attack_sweep(1.0, std::max(2.0, max_size), steps));
}

hids::PolicyOutcome evaluate_fleet_policy(const FleetScenario& fleet,
                                          features::FeatureKind feature,
                                          hids::EvaluationRound round,
                                          const hids::Grouper& grouper,
                                          const hids::ThresholdHeuristic& heuristic,
                                          const hids::AttackModel& attack,
                                          unsigned threads) {
  FleetAnalysisCache& cache = fleet.analysis();
  const auto train = cache.week(feature, round.train_week, threads);
  const auto test = cache.week(feature, round.test_week, threads);
  hids::PolicyOutcome outcome =
      hids::evaluate_policy(*train, *test, grouper, heuristic, attack, threads);
  // The stock path counted alarms per compact-row sample (grid_points of
  // them); a console meters alarms per real test-week bin.
  for (auto& user : outcome.users) {
    user.weekly_false_alarms = static_cast<std::uint64_t>(
        std::llround(user.fp_rate * static_cast<double>(fleet.bins_per_week())));
  }
  return outcome;
}

}  // namespace monohids::sim
