// Canned experiment runners — one per paper table/figure.
//
// Each function reduces a Scenario to the data series its figure plots, so
// bench binaries only format output and tests can assert on the shape
// claims (who wins, orderings, crossovers) directly. DESIGN.md §4 maps each
// runner to its table/figure.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "hids/collaborative.hpp"
#include "hids/evaluator.hpp"
#include "sim/scenario.hpp"
#include "trace/storm.hpp"

namespace monohids::sim {

/// The paper's three canonical grouping policies, in presentation order:
/// homogeneous, full-diversity, 8-partial.
[[nodiscard]] std::vector<std::unique_ptr<hids::Grouper>> canonical_groupers();

/// The paper's evaluation rounds: train wk1 -> test wk2, train wk3 -> test
/// wk4 (0-indexed weeks 0->1, 2->3). Requires a >= 4-week scenario.
[[nodiscard]] std::vector<hids::EvaluationRound> canonical_rounds();

/// Attack sweep used for FN estimation: linear grid up to the maximum value
/// any user's training traffic reaches on `feature`.
[[nodiscard]] hids::AttackModel make_attack_model(const Scenario& scenario,
                                                  features::FeatureKind feature,
                                                  std::uint32_t train_week,
                                                  std::uint32_t steps = 64);

// ---------------------------------------------------------------- Figure 1
struct TailDiversityResult {
  features::FeatureKind feature;
  std::vector<double> p99_sorted;   ///< per-user 99th percentiles, ascending
  std::vector<double> p999_sorted;  ///< 99.9th, same user order as p99_sorted
  double spread_decades = 0.0;      ///< log10(max p99 / min positive p99)
};
[[nodiscard]] TailDiversityResult tail_diversity(const Scenario& scenario,
                                                 features::FeatureKind feature,
                                                 std::uint32_t week);

// ---------------------------------------------------------------- Figure 2
struct FeatureScatterResult {
  std::vector<double> x;  ///< per-user p99 of feature_x
  std::vector<double> y;  ///< per-user p99 of feature_y
};
[[nodiscard]] FeatureScatterResult feature_scatter(const Scenario& scenario,
                                                   features::FeatureKind feature_x,
                                                   features::FeatureKind feature_y,
                                                   std::uint32_t week);

// ----------------------------------------------------------------- Table 2
struct BestUsersResult {
  std::vector<std::uint32_t> full_diversity;
  std::vector<std::uint32_t> partial_diversity;
};
[[nodiscard]] BestUsersResult best_users_experiment(const Scenario& scenario,
                                                    features::FeatureKind feature,
                                                    std::uint32_t week,
                                                    std::size_t count = 10);

// ------------------------------------------------------------- Figure 3(a)
struct UtilityComparisonResult {
  std::vector<std::string> policy_names;
  std::vector<std::vector<double>> utilities;  ///< per policy, per user
};
[[nodiscard]] UtilityComparisonResult utility_boxplots(const Scenario& scenario,
                                                       features::FeatureKind feature,
                                                       double w);

// ------------------------------------------------------------- Figure 3(b)
struct WeightSweepResult {
  std::vector<double> weights;
  std::vector<std::string> policy_names;
  std::vector<std::vector<double>> mean_utility;  ///< per policy, per weight
};
/// `reoptimize_per_weight` = true re-runs the utility-optimal heuristic for
/// every w (thresholds adapt to the weight); false (default, and the only
/// reading consistent with the paper's diverging curves) keeps the
/// 99th-percentile thresholds fixed and evaluates utility at each w.
[[nodiscard]] WeightSweepResult weight_sweep(const Scenario& scenario,
                                             features::FeatureKind feature,
                                             std::vector<double> weights = {},
                                             bool reoptimize_per_weight = false);

// ----------------------------------------------------------------- Table 3
struct AlarmRateResult {
  std::vector<std::string> heuristic_names;
  std::vector<std::string> policy_names;
  /// alarms[h][p]: mean false alarms per week at the console.
  std::vector<std::vector<double>> alarms;
};
[[nodiscard]] AlarmRateResult alarm_rates(const Scenario& scenario,
                                          features::FeatureKind feature, double utility_w = 0.4);

// ------------------------------------------------------------- Figure 4(a)
struct NaiveAttackResult {
  std::vector<double> sizes;
  std::vector<std::string> policy_names;
  std::vector<std::vector<double>> detection;  ///< per policy, per size
};
[[nodiscard]] NaiveAttackResult naive_attack_curves(const Scenario& scenario,
                                                    features::FeatureKind feature,
                                                    std::uint32_t size_steps = 50);

// ------------------------------------------------------------- Figure 4(b)
struct ResourcefulAttackResult {
  std::vector<std::string> policy_names;
  std::vector<std::vector<double>> hidden_volumes;  ///< per policy, per user
  double evasion_target = 0.9;
};
[[nodiscard]] ResourcefulAttackResult resourceful_attack(const Scenario& scenario,
                                                         features::FeatureKind feature,
                                                         double evasion_target = 0.9);

// ---------------------------------------------------------------- Figure 5
struct StormReplayResult {
  std::vector<std::string> policy_names;
  std::vector<std::vector<hids::ReplayOutcome>> outcomes;  ///< per policy, per user
};
[[nodiscard]] StormReplayResult storm_replay(const Scenario& scenario,
                                             const trace::StormConfig& storm_config = {});

// -------------------------------------------------- §5 grouping ablation
struct GroupingAblationResult {
  std::vector<std::string> grouper_names;
  std::vector<double> mean_utility;      ///< at w = 0.4
  std::vector<double> weekly_alarms;
  std::vector<double> silhouettes;       ///< k-means quality per k (2,3,5,8)
  std::vector<std::uint32_t> silhouette_k;
};
[[nodiscard]] GroupingAblationResult grouping_ablation(const Scenario& scenario,
                                                       features::FeatureKind feature);

// ------------------------------------------------- §6.1 threshold drift
struct ThresholdDriftResult {
  /// Per-user realized FP rate in the test week when targeting the 99th
  /// percentile (1% FP) on the training week, under full diversity.
  std::vector<double> realized_fp;
  double target_fp = 0.01;
  double median_realized_fp = 0.0;
  double fraction_within_2x = 0.0;  ///< users whose realized FP is in [0.5%, 2%]
};
[[nodiscard]] ThresholdDriftResult threshold_drift(const Scenario& scenario,
                                                   features::FeatureKind feature);

// ------------------------------------------- extension: collaboration
[[nodiscard]] hids::CollaborativeCurve collaboration_experiment(
    const Scenario& scenario, features::FeatureKind feature,
    const hids::CollaborativeConfig& config, std::uint32_t size_steps = 40);

}  // namespace monohids::sim
