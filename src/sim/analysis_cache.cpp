#include "sim/analysis_cache.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"

namespace monohids::sim {

namespace {

/// Cache metrics: one counter bump per lookup and a span + histogram
/// observation per computed artifact. Lookups are per-(feature, week) —
/// dozens to thousands per experiment suite — nowhere near a hot loop.
struct CacheMetrics {
  obs::Counter hits;
  obs::Counter misses;
  obs::Counter bypasses;
  obs::Histogram build_ms;
};

CacheMetrics& cache_metrics() {
  auto& registry = obs::MetricsRegistry::global();
  static CacheMetrics m{
      registry.counter("cache.hits_total"),
      registry.counter("cache.misses_total"),
      registry.counter("cache.bypasses_total"),
      registry.histogram("cache.build_ms", obs::latency_buckets_ms()),
  };
  return m;
}

}  // namespace

AnalysisCache::AnalysisCache(std::span<const features::FeatureMatrix> users)
    : users_(users) {
  MONOHIDS_EXPECT(!users.empty(), "analysis cache over an empty population");
}

template <typename Key, typename Value, typename Compute>
std::shared_ptr<const Value> AnalysisCache::get_or_compute(MemoMap<Key, Value>& map,
                                                           const Key& key,
                                                           Compute&& compute) {
  if (bypass_) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.misses;
    }
    cache_metrics().bypasses.inc();
    return compute();
  }

  std::promise<std::shared_ptr<const Value>> promise;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = map.entries.find(key);
    if (it != map.entries.end()) {
      ++counters_.hits;
      auto future = it->second;
      lock.unlock();
      cache_metrics().hits.inc();
      return future.get();  // blocks only while the first caller computes
    }
    ++counters_.misses;
    map.entries.emplace(key, promise.get_future().share());
  }
  cache_metrics().misses.inc();
  // Compute outside the lock: the fan-out over the thread pool must not
  // serialize behind unrelated keys, and same-key callers wait on the
  // shared future instead.
  try {
    const obs::ScopedTimer span("cache.build", cache_metrics().build_ms);
    auto value = compute();
    promise.set_value(value);
    return value;
  } catch (...) {
    promise.set_exception(std::current_exception());
    const std::lock_guard<std::mutex> lock(mutex_);
    map.entries.erase(key);  // let a later call retry; waiters see the exception
    throw;
  }
}

std::shared_ptr<const AnalysisCache::DistributionSet> AnalysisCache::week(
    features::FeatureKind feature, std::uint32_t week, unsigned threads) {
  const DistKey key{features::index_of(feature), week};
  return get_or_compute(distributions_, key, [&]() {
    return std::make_shared<const DistributionSet>(
        hids::week_distributions(users_, feature, week, threads));
  });
}

std::shared_ptr<const hids::ThresholdAssignment> AnalysisCache::thresholds(
    features::FeatureKind feature, std::uint32_t train_week, const hids::Grouper& grouper,
    const hids::ThresholdHeuristic& heuristic, const hids::AttackModel* attack,
    unsigned threads) {
  AssignKey key{features::index_of(feature), train_week, grouper.cache_key(),
                heuristic.cache_key(),
                attack != nullptr ? attack->sizes : std::vector<double>{}};
  return get_or_compute(assignments_, key, [&]() {
    const auto train = week(feature, train_week, threads);
    return std::make_shared<const hids::ThresholdAssignment>(
        hids::assign_thresholds(*train, grouper, heuristic, attack, threads));
  });
}

std::shared_ptr<const hids::AttackModel> AnalysisCache::attack_model(
    features::FeatureKind feature, std::uint32_t train_week, std::uint32_t steps,
    unsigned threads) {
  const AttackKey key{features::index_of(feature), train_week, steps};
  return get_or_compute(attacks_, key, [&]() {
    const auto train = week(feature, train_week, threads);
    const double max_size = hids::max_observed_value(*train);
    // Log spacing: stealthy sizes get proportionally more grid weight than
    // the trivially-detected giants near the global maximum (see
    // sim::make_attack_model).
    return std::make_shared<const hids::AttackModel>(
        hids::log_attack_sweep(1.0, std::max(2.0, max_size), steps));
  });
}

AnalysisCache::Counters AnalysisCache::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void AnalysisCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  distributions_.entries.clear();
  assignments_.entries.clear();
  attacks_.entries.clear();
}

}  // namespace monohids::sim
