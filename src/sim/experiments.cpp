#include "sim/experiments.hpp"

#include <algorithm>
#include <cmath>

#include "hids/attacker.hpp"
#include "sim/analysis_cache.hpp"
#include "stats/kmeans.hpp"
#include "stats/quantile.hpp"
#include "trace/overlay.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace monohids::sim {

using features::FeatureKind;
using hids::AttackModel;
using hids::EvaluationRound;
using stats::EmpiricalDistribution;

std::vector<std::unique_ptr<hids::Grouper>> canonical_groupers() {
  std::vector<std::unique_ptr<hids::Grouper>> groupers;
  groupers.push_back(std::make_unique<hids::HomogeneousGrouper>());
  groupers.push_back(std::make_unique<hids::FullDiversityGrouper>());
  groupers.push_back(std::make_unique<hids::KneePartialGrouper>());  // 8-partial
  return groupers;
}

std::vector<EvaluationRound> canonical_rounds() {
  return {EvaluationRound{0, 1}, EvaluationRound{2, 3}};
}

AttackModel make_attack_model(const Scenario& scenario, FeatureKind feature,
                              std::uint32_t train_week, std::uint32_t steps) {
  // Memoized in the scenario's analysis cache (the log-spacing rationale
  // lives there): every runner that sweeps the same (feature, week) shares
  // one model, which also keeps threshold-assignment cache keys aligned.
  return *scenario.analysis().attack_model(feature, train_week, steps);
}

TailDiversityResult tail_diversity(const Scenario& scenario, FeatureKind feature,
                                   std::uint32_t week) {
  const auto users_held = scenario.analysis().week(feature, week);
  const auto& users = *users_held;

  struct Pair {
    double p99, p999;
  };
  std::vector<Pair> pairs;
  pairs.reserve(users.size());
  for (const auto& u : users) {
    pairs.push_back({u.quantile(0.99), u.quantile(0.999)});
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.p99 < b.p99; });

  TailDiversityResult result;
  result.feature = feature;
  result.p99_sorted.reserve(pairs.size());
  result.p999_sorted.reserve(pairs.size());
  double min_positive = 0.0, max_value = 0.0;
  for (const Pair& p : pairs) {
    result.p99_sorted.push_back(p.p99);
    result.p999_sorted.push_back(p.p999);
    if (p.p99 > 0.0 && (min_positive == 0.0 || p.p99 < min_positive)) min_positive = p.p99;
    max_value = std::max(max_value, p.p99);
  }
  result.spread_decades =
      (min_positive > 0.0 && max_value > 0.0) ? std::log10(max_value / min_positive) : 0.0;
  return result;
}

FeatureScatterResult feature_scatter(const Scenario& scenario, FeatureKind feature_x,
                                     FeatureKind feature_y, std::uint32_t week) {
  const auto xs = scenario.analysis().week(feature_x, week);
  const auto ys = scenario.analysis().week(feature_y, week);
  FeatureScatterResult result;
  result.x.reserve(xs->size());
  result.y.reserve(ys->size());
  for (std::size_t u = 0; u < xs->size(); ++u) {
    result.x.push_back((*xs)[u].quantile(0.99));
    result.y.push_back((*ys)[u].quantile(0.99));
  }
  return result;
}

BestUsersResult best_users_experiment(const Scenario& scenario, FeatureKind feature,
                                      std::uint32_t week, std::size_t count) {
  auto& cache = scenario.analysis();
  const auto train = cache.week(feature, week);
  const hids::PercentileHeuristic p99(0.99);

  // Within a shared-threshold group, the genuinely most sensitive hosts are
  // the ones with the lowest personal tails; use those to order ties.
  std::vector<double> personal_q99;
  personal_q99.reserve(train->size());
  for (const auto& u : *train) personal_q99.push_back(u.quantile(0.99));

  BestUsersResult result;
  const auto full =
      cache.thresholds(feature, week, hids::FullDiversityGrouper{}, p99, nullptr);
  result.full_diversity = hids::best_users(*full, count, personal_q99);
  // Members of a partial-diversity group share one configuration, so there
  // is no canonical order inside a group; list a deterministic sample
  // (hash-ordered) rather than replaying the full-diversity ranking.
  std::vector<double> hash_order;
  hash_order.reserve(train->size());
  for (std::uint32_t u = 0; u < train->size(); ++u) {
    hash_order.push_back(static_cast<double>(util::derive_seed(1, "tie", u)));
  }
  const auto partial =
      cache.thresholds(feature, week, hids::KneePartialGrouper{}, p99, nullptr);
  result.partial_diversity = hids::best_users(*partial, count, hash_order);
  return result;
}

UtilityComparisonResult utility_boxplots(const Scenario& scenario, FeatureKind feature,
                                         double w) {
  const auto rounds = canonical_rounds();
  const AttackModel attack = make_attack_model(scenario, feature, rounds.front().train_week);
  const hids::UtilityHeuristic heuristic(w);

  UtilityComparisonResult result;
  for (const auto& grouper : canonical_groupers()) {
    const auto outcome = hids::evaluate_rounds(scenario.matrices, feature, rounds, *grouper,
                                               heuristic, attack, 0, &scenario.analysis());
    result.policy_names.push_back(outcome.policy_name);
    result.utilities.push_back(outcome.utilities(w));
  }
  return result;
}

WeightSweepResult weight_sweep(const Scenario& scenario, FeatureKind feature,
                               std::vector<double> weights, bool reoptimize_per_weight) {
  if (weights.empty()) {
    for (double w = 0.1; w < 0.95; w += 0.1) weights.push_back(w);
  }
  const auto rounds = canonical_rounds();
  const AttackModel attack = make_attack_model(scenario, feature, rounds.front().train_week);

  WeightSweepResult result;
  result.weights = weights;
  const auto groupers = canonical_groupers();
  result.mean_utility.resize(groupers.size());
  for (std::size_t g = 0; g < groupers.size(); ++g) {
    result.policy_names.push_back(groupers[g]->name());
    if (reoptimize_per_weight) {
      for (double w : weights) {
        const hids::UtilityHeuristic heuristic(w);
        const auto outcome =
            hids::evaluate_rounds(scenario.matrices, feature, rounds, *groupers[g],
                                  heuristic, attack, 0, &scenario.analysis());
        result.mean_utility[g].push_back(outcome.mean_utility(w));
      }
    } else {
      // Fixed operating point (the survey-favorite 99th percentile); w only
      // re-weights the already-realized (FP, FN) of every host. This is what
      // makes the policies' curves diverge as w grows: the monoculture's
      // high FN is amplified while diversity's low FN keeps it flat.
      const hids::PercentileHeuristic heuristic(0.99);
      const auto outcome =
          hids::evaluate_rounds(scenario.matrices, feature, rounds, *groupers[g], heuristic,
                                attack, 0, &scenario.analysis());
      for (double w : weights) {
        result.mean_utility[g].push_back(outcome.mean_utility(w));
      }
    }
  }
  return result;
}

AlarmRateResult alarm_rates(const Scenario& scenario, FeatureKind feature, double utility_w) {
  const auto rounds = canonical_rounds();
  const AttackModel attack = make_attack_model(scenario, feature, rounds.front().train_week);

  std::vector<std::unique_ptr<hids::ThresholdHeuristic>> heuristics;
  heuristics.push_back(std::make_unique<hids::PercentileHeuristic>(0.99));
  heuristics.push_back(std::make_unique<hids::UtilityHeuristic>(utility_w));

  AlarmRateResult result;
  const auto groupers = canonical_groupers();
  for (const auto& g : groupers) result.policy_names.push_back(g->name());
  for (const auto& h : heuristics) {
    result.heuristic_names.push_back(h->name());
    std::vector<double> row;
    for (const auto& grouper : groupers) {
      const auto outcome = hids::evaluate_rounds(scenario.matrices, feature, rounds, *grouper,
                                                 *h, attack, 0, &scenario.analysis());
      row.push_back(static_cast<double>(outcome.total_false_alarms()));
    }
    result.alarms.push_back(std::move(row));
  }
  return result;
}

NaiveAttackResult naive_attack_curves(const Scenario& scenario, FeatureKind feature,
                                      std::uint32_t size_steps) {
  auto& cache = scenario.analysis();
  const auto rounds = canonical_rounds();
  const auto train = cache.week(feature, rounds.front().train_week);
  const auto test = cache.week(feature, rounds.front().test_week);
  const AttackModel attack = make_attack_model(scenario, feature, rounds.front().train_week);
  const hids::PercentileHeuristic p99(0.99);

  // Size grid: log-spaced to resolve the stealthy 1-100 range the paper
  // highlights, up to half the population maximum (the figure's x-range).
  const double max_size = hids::max_observed_value(*train) * 0.5;
  const auto sweep = hids::log_attack_sweep(1.0, std::max(2.0, max_size), size_steps);

  NaiveAttackResult result;
  result.sizes = sweep.sizes;
  for (const auto& grouper : canonical_groupers()) {
    const auto assignment =
        cache.thresholds(feature, rounds.front().train_week, *grouper, p99, &attack);
    result.policy_names.push_back(grouper->name());
    result.detection.push_back(
        hids::naive_detection_curve(*test, assignment->threshold_of_user, sweep.sizes));
  }
  return result;
}

ResourcefulAttackResult resourceful_attack(const Scenario& scenario, FeatureKind feature,
                                           double evasion_target) {
  auto& cache = scenario.analysis();
  const auto rounds = canonical_rounds();
  const auto train = cache.week(feature, rounds.front().train_week);
  const hids::PercentileHeuristic p99(0.99);
  const hids::ResourcefulAttacker attacker{evasion_target};

  ResourcefulAttackResult result;
  result.evasion_target = evasion_target;
  for (const auto& grouper : canonical_groupers()) {
    const auto assignment =
        cache.thresholds(feature, rounds.front().train_week, *grouper, p99, nullptr);
    result.policy_names.push_back(grouper->name());
    result.hidden_volumes.push_back(
        attacker.hidden_volumes(*train, assignment->threshold_of_user));
  }
  return result;
}

StormReplayResult storm_replay(const Scenario& scenario,
                               const trace::StormConfig& storm_config) {
  // The paper's real-attack analysis uses num-distinct-connections.
  const FeatureKind feature = FeatureKind::DistinctConnections;
  const auto rounds = canonical_rounds();
  const std::uint32_t train_week = rounds.front().train_week;
  const std::uint32_t test_week = rounds.front().test_week;

  trace::StormConfig cfg = storm_config;
  cfg.grid = scenario.config.generator.grid;
  const auto storm = trace::generate_storm_features(cfg);
  const auto storm_bins = storm.of(feature).values();

  auto& cache = scenario.analysis();
  const auto train = cache.week(feature, train_week);
  const hids::PercentileHeuristic p99(0.99);

  // All hosts share one bin grid, so the zombie week tiles over the test
  // week identically for every user and every grouper: build the attack
  // vector once up front instead of once per (user x grouper).
  MONOHIDS_EXPECT(scenario.user_count() > 0, "empty scenario");
  const std::size_t test_bins =
      scenario.matrices.front().of(feature).week_slice(test_week).size();
  std::vector<double> attack(test_bins);
  for (std::size_t i = 0; i < test_bins; ++i) {
    attack[i] = storm_bins[i % storm_bins.size()];
  }

  StormReplayResult result;
  for (const auto& grouper : canonical_groupers()) {
    const auto assignment = cache.thresholds(feature, train_week, *grouper, p99, nullptr);
    // Each host replays the zombie week against its own benign trace and
    // threshold — independent work, sharded across the pool.
    auto outcomes = util::parallel_map(scenario.user_count(), [&](std::size_t u) {
      const auto benign = scenario.matrices[u].of(feature).week_slice(test_week);
      return hids::evaluate_replay(benign, attack, assignment->threshold_of_user[u]);
    });
    result.policy_names.push_back(grouper->name());
    result.outcomes.push_back(std::move(outcomes));
  }
  return result;
}

GroupingAblationResult grouping_ablation(const Scenario& scenario, FeatureKind feature) {
  const auto rounds = canonical_rounds();
  const AttackModel attack = make_attack_model(scenario, feature, rounds.front().train_week);
  const double w = 0.4;
  const hids::UtilityHeuristic heuristic(w);

  std::vector<std::unique_ptr<hids::Grouper>> groupers;
  groupers.push_back(std::make_unique<hids::HomogeneousGrouper>());
  groupers.push_back(std::make_unique<hids::KneePartialGrouper>());
  groupers.push_back(std::make_unique<hids::KMeansGrouper>(8));
  groupers.push_back(std::make_unique<hids::EqualFrequencyGrouper>(8));
  groupers.push_back(std::make_unique<hids::FullDiversityGrouper>());

  GroupingAblationResult result;
  for (const auto& grouper : groupers) {
    const auto outcome = hids::evaluate_rounds(scenario.matrices, feature, rounds, *grouper,
                                               heuristic, attack, 0, &scenario.analysis());
    result.grouper_names.push_back(outcome.policy_name);
    result.mean_utility.push_back(outcome.mean_utility(w));
    result.weekly_alarms.push_back(static_cast<double>(outcome.total_false_alarms()));
  }

  // Silhouette analysis of k-means over log10(p99): the paper's finding is
  // that no k produces natural separation (silhouette stays low).
  const auto train = scenario.analysis().week(feature, rounds.front().train_week);
  std::vector<std::vector<double>> points;
  points.reserve(train->size());
  for (const auto& u : *train) {
    points.push_back({std::log10(std::max(1.0, u.quantile(0.99)))});
  }
  for (std::uint32_t k : {2u, 3u, 5u, 8u}) {
    util::Xoshiro256 rng(99);
    const auto clusters = stats::kmeans(points, k, rng);
    result.silhouette_k.push_back(k);
    result.silhouettes.push_back(stats::mean_silhouette(points, clusters.assignment, k));
  }
  return result;
}

ThresholdDriftResult threshold_drift(const Scenario& scenario, FeatureKind feature) {
  const auto rounds = canonical_rounds();
  const auto train = scenario.analysis().week(feature, rounds.front().train_week);
  const auto test = scenario.analysis().week(feature, rounds.front().test_week);

  ThresholdDriftResult result;
  result.realized_fp.reserve(train->size());
  std::size_t within = 0;
  for (std::size_t u = 0; u < train->size(); ++u) {
    const double t = (*train)[u].quantile(0.99);
    const double fp = (*test)[u].exceedance(t);
    result.realized_fp.push_back(fp);
    if (fp >= 0.005 && fp <= 0.02) ++within;
  }
  std::vector<double> sorted = result.realized_fp;
  std::sort(sorted.begin(), sorted.end());
  result.median_realized_fp = stats::quantile_interpolated_sorted(sorted, 0.5);
  result.fraction_within_2x =
      static_cast<double>(within) / static_cast<double>(train->size());
  return result;
}

hids::CollaborativeCurve collaboration_experiment(const Scenario& scenario,
                                                  FeatureKind feature,
                                                  const hids::CollaborativeConfig& config,
                                                  std::uint32_t size_steps) {
  auto& cache = scenario.analysis();
  const auto rounds = canonical_rounds();
  const auto train = cache.week(feature, rounds.front().train_week);
  const auto test = cache.week(feature, rounds.front().test_week);
  const hids::PercentileHeuristic p99(0.99);
  const auto assignment = cache.thresholds(feature, rounds.front().train_week,
                                           hids::FullDiversityGrouper{}, p99, nullptr);

  const double max_size = hids::max_observed_value(*train) * 0.5;
  const auto sweep = hids::log_attack_sweep(1.0, std::max(2.0, max_size), size_steps);
  return hids::collaborative_curve(*test, assignment->threshold_of_user, config, sweep.sizes);
}

}  // namespace monohids::sim
