// Management-cost model for IT policies.
//
// The paper's IT-operator survey surfaces two costs the policies trade
// against detection quality: the reporting traffic of centralized threshold
// computation ("all the data is pulled to the central console") and the
// number of distinct configurations operators must audit for compliance.
// This model quantifies both per policy, with and without compact
// quantile-summary shipping, backing the paper's §6 discussion with
// numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/scenario.hpp"

namespace monohids::sim {

/// How hosts report their distributions to the console.
enum class ReportingMode : std::uint8_t {
  None,            ///< thresholds computed locally (full diversity)
  FullDistribution,  ///< ship every bin count (the paper's description)
  QuantileSummary,   ///< ship a fixed-size quantile grid
};

struct ManagementCost {
  std::string policy;
  ReportingMode reporting = ReportingMode::None;
  std::uint64_t uplink_bytes_per_week = 0;    ///< hosts -> console
  std::uint64_t downlink_bytes_per_week = 0;  ///< console -> hosts
  std::uint32_t distinct_configurations = 0;  ///< the compliance-audit burden
};

struct ManagementCostConfig {
  std::uint32_t users = 350;
  std::uint32_t bins_per_week = 672;
  std::uint32_t features = 6;
  std::size_t summary_points = 128;
  std::uint32_t partial_groups = 8;
};

/// Costs for the paper's three policies under the given reporting mode
/// (None is forced for full diversity; the mode applies to the centralized
/// policies).
[[nodiscard]] std::vector<ManagementCost> management_costs(const ManagementCostConfig& config,
                                                           ReportingMode centralized_mode);

[[nodiscard]] std::string_view name_of(ReportingMode mode) noexcept;

}  // namespace monohids::sim
