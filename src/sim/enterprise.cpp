#include "sim/enterprise.hpp"

#include <cmath>

#include "hids/evaluator.hpp"
#include "sim/analysis_cache.hpp"

#include "trace/overlay.hpp"
#include "util/error.hpp"

namespace monohids::sim {

FeatureAssignments assign_all_features(const Scenario& scenario, std::uint32_t train_week,
                                       const hids::Grouper& grouper,
                                       const hids::ThresholdHeuristic& heuristic) {
  // Route through the scenario's analysis cache: repeated configuration
  // passes (and any experiment sharing the scenario) reuse the memoized
  // training distributions and assignments instead of rebuilding them.
  AnalysisCache& cache = scenario.analysis();
  FeatureAssignments assignments;
  for (features::FeatureKind f : features::kAllFeatures) {
    assignments[features::index_of(f)] =
        *cache.thresholds(f, train_week, grouper, heuristic, /*attack=*/nullptr);
  }
  return assignments;
}

EnterpriseResult run_enterprise_week(const Scenario& scenario,
                                     const FeatureAssignments& assignments,
                                     const EnterpriseConfig& config) {
  MONOHIDS_EXPECT(config.week < scenario.config.generator.weeks,
                  "week outside the scenario horizon");
  for (const auto& a : assignments) {
    MONOHIDS_EXPECT(a.threshold_of_user.size() == scenario.user_count(),
                    "assignment population mismatch");
  }

  const util::BinGrid grid = scenario.config.generator.grid;
  const std::size_t bins_per_week =
      static_cast<std::size_t>(util::kMicrosPerWeek / grid.width());
  const std::size_t first_bin = config.week * bins_per_week;
  const std::size_t last_bin = first_bin + bins_per_week;

  EnterpriseResult result(scenario.user_count(), scenario.config.generator.weeks);

  for (std::uint32_t u = 0; u < scenario.user_count(); ++u) {
    hids::HostHids host(u);
    for (features::FeatureKind f : features::kAllFeatures) {
      host.configure(f, assignments[features::index_of(f)].threshold_of_user[u]);
    }

    hids::AlertBatcher batcher(u, config.batch_interval,
                               [&result, u](const hids::AlertBatch& batch) {
                                 result.console.ingest(batch);
                                 result.alerts_per_user[u] += batch.alerts.size();
                               });

    const auto scan_with = [&](const features::FeatureMatrix& observed) {
      host.scan_range(observed, first_bin, last_bin,
                      [&batcher](const hids::Alert& alert) { batcher.submit(alert); });
    };
    if (config.attack.has_value()) {
      scan_with(trace::overlay_tiled(scenario.matrices[u], *config.attack));
    } else {
      scan_with(scenario.matrices[u]);
    }
    batcher.flush((config.week + 1) * util::kMicrosPerWeek);
    result.total_batches += batcher.batches_sent();
  }
  return result;
}

}  // namespace monohids::sim
