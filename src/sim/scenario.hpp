// Scenario assembly: the "dataset" every experiment runs on.
//
// A Scenario is the reproduction's stand-in for the paper's corpus: a
// population of user profiles plus each user's multi-week feature matrices,
// all derived deterministically from one seed. Experiments (sim/experiments
// .hpp) and benches consume Scenarios; tests build tiny ones.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "features/pipeline.hpp"
#include "features/time_series.hpp"
#include "trace/generator.hpp"
#include "trace/population.hpp"

namespace monohids::sim {

class AnalysisCache;

/// How each user's feature matrices are rendered.
enum class TraceFidelity : std::uint8_t {
  Bins,     ///< bin-level statistical render (fast; the default)
  Packets,  ///< materialize packets and stream them through the ingest engine
};

struct ScenarioConfig {
  trace::PopulationConfig population;
  trace::GeneratorConfig generator;

  /// Packets fidelity runs every user's trace through connection tracking
  /// and feature extraction (features::IngestSession) exactly as a real
  /// capture would be — the full-pipeline mode for validation studies. The
  /// generator streams bounded batches into the session, so peak memory per
  /// worker is the reorder window plus one batch, not the trace length.
  TraceFidelity fidelity = TraceFidelity::Bins;

  /// Batch bound for the Packets streaming path. Execution knob: output is
  /// bit-identical for every value (absent from serialize_scenario_config).
  std::size_t ingest_batch = features::kDefaultIngestBatch;

  /// Worker threads for per-user feature generation: 0 = auto
  /// (MONOHIDS_THREADS env var, else hardware concurrency), 1 = serial.
  /// Output is bit-identical for every value — each user's matrix comes
  /// from their own derived RNG stream and lands in their own slot — so
  /// this is an execution knob, not a model parameter (and is deliberately
  /// absent from serialize_scenario_config).
  unsigned threads = 0;

  /// Convenience: one seed for everything.
  void set_seed(std::uint64_t seed) { population.seed = seed; }
  void set_users(std::uint32_t n) { population.user_count = n; }
  void set_weeks(std::uint32_t w) {
    population.weeks = w;
    generator.weeks = w;
  }
};

struct Scenario {
  ScenarioConfig config;
  std::vector<trace::UserProfile> users;
  std::vector<features::FeatureMatrix> matrices;  ///< per user, six features

  [[nodiscard]] std::uint32_t user_count() const noexcept {
    return static_cast<std::uint32_t>(users.size());
  }

  /// The scenario's lazily-created analysis cache (sim/analysis_cache.hpp):
  /// memoized per-week distributions, threshold assignments and attack
  /// models over `matrices`. Every experiment runner shares this one
  /// substrate. The cache references `matrices` — do not mutate them after
  /// first use; a copied Scenario gets its own fresh cache on first access.
  /// Lazy creation is not synchronized: take the first reference from a
  /// single thread (the cache itself is thread-safe afterwards).
  [[nodiscard]] AnalysisCache& analysis() const;

  /// Shared handle for callers that need to extend the cache's lifetime
  /// beyond the Scenario (the arena-backed distributions it hands out stay
  /// valid on their own; the cache needs `matrices` only to fill misses).
  mutable std::shared_ptr<AnalysisCache> analysis_cache;
};

/// Generates the full scenario (population + all feature matrices). This is
/// the expensive call; reuse the result across experiments.
[[nodiscard]] Scenario build_scenario(const ScenarioConfig& config);

}  // namespace monohids::sim
