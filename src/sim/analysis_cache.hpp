// Memoized analysis substrate shared by the whole experiment suite.
//
// Every figure/table starts from the same per-user, per-week empirical
// distributions and (grouper x heuristic) threshold assignments, yet the
// uncached pipeline rebuilds them on each call. AnalysisCache computes each
// artifact once — keyed on (feature, week) for distributions and on
// (feature, train week, grouper, heuristic, attack sweep) for threshold
// assignments — and hands out shared, immutable results zero-copy
// (EmpiricalDistribution copies are pointer+span copies). Results are
// bit-identical to the uncached path for any thread count.
//
// Lifetime: the cache references (does not copy) the feature matrices it
// was built over; it is valid while those matrices are alive and
// unmodified. Scenario::analysis() owns the canonical instance.
//
// Thread safety: get-or-compute is guarded per key with shared futures, so
// concurrent callers of the same key compute once and everyone else waits;
// distinct keys compute concurrently. Callers must not be thread-pool
// workers (the compute itself fans out over the pool).
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "hids/attack_model.hpp"
#include "hids/evaluator.hpp"

namespace monohids::sim {

class AnalysisCache final : public hids::DistributionCache {
 public:
  /// Builds an empty cache over `users` (referenced, not copied).
  explicit AnalysisCache(std::span<const features::FeatureMatrix> users);

  /// Memoized hids::week_distributions(users, feature, week).
  [[nodiscard]] std::shared_ptr<const DistributionSet> week(
      features::FeatureKind feature, std::uint32_t week, unsigned threads = 0) override;

  /// Memoized hids::assign_thresholds over the cached training
  /// distributions. Keyed on cache_key() of the grouper/heuristic plus the
  /// exact attack sweep, so parameterized policies never collide.
  [[nodiscard]] std::shared_ptr<const hids::ThresholdAssignment> thresholds(
      features::FeatureKind feature, std::uint32_t train_week,
      const hids::Grouper& grouper, const hids::ThresholdHeuristic& heuristic,
      const hids::AttackModel* attack, unsigned threads = 0) override;

  /// Memoized sim::make_attack_model: log sweep bounded by the maximum
  /// observed training value of `feature` in `train_week`.
  [[nodiscard]] std::shared_ptr<const hids::AttackModel> attack_model(
      features::FeatureKind feature, std::uint32_t train_week, std::uint32_t steps = 64,
      unsigned threads = 0);

  /// True when this cache was built over exactly `users` (same storage) —
  /// Scenario::analysis() uses this to invalidate on copy.
  [[nodiscard]] bool covers(std::span<const features::FeatureMatrix> users) const noexcept {
    return users_.data() == users.data() && users_.size() == users.size();
  }

  [[nodiscard]] std::uint32_t user_count() const noexcept {
    return static_cast<std::uint32_t>(users_.size());
  }

  /// Hit/miss counters (for benches and tests). A "miss" is a computation;
  /// a "hit" is a lookup served from memory.
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] Counters counters() const;

  /// When bypassing, every call recomputes and nothing is stored — the
  /// pre-cache pipeline, used by benches to measure the uncached baseline
  /// and by tests to prove bit-identity.
  void set_bypass(bool bypass) noexcept { bypass_ = bypass; }

  /// Drops every memoized artifact (outstanding shared_ptrs stay valid).
  void clear();

 private:
  template <typename Key, typename Value>
  struct MemoMap {
    std::map<Key, std::shared_future<std::shared_ptr<const Value>>> entries;
  };

  template <typename Key, typename Value, typename Compute>
  std::shared_ptr<const Value> get_or_compute(MemoMap<Key, Value>& map, const Key& key,
                                              Compute&& compute);

  using DistKey = std::pair<std::size_t, std::uint32_t>;  // (feature index, week)
  using AssignKey = std::tuple<std::size_t, std::uint32_t, std::string, std::string,
                               std::vector<double>>;
  using AttackKey = std::tuple<std::size_t, std::uint32_t, std::uint32_t>;

  std::span<const features::FeatureMatrix> users_;
  mutable std::mutex mutex_;
  MemoMap<DistKey, DistributionSet> distributions_;
  MemoMap<AssignKey, hids::ThresholdAssignment> assignments_;
  MemoMap<AttackKey, hids::AttackModel> attacks_;
  Counters counters_;
  bool bypass_ = false;
};

}  // namespace monohids::sim
