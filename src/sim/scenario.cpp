#include "sim/scenario.hpp"

#include "util/logging.hpp"

namespace monohids::sim {

Scenario build_scenario(const ScenarioConfig& config) {
  Scenario scenario;
  scenario.config = config;
  scenario.users = trace::generate_population(config.population);

  const trace::TraceGenerator generator(config.generator);
  scenario.matrices.reserve(scenario.users.size());
  for (const trace::UserProfile& user : scenario.users) {
    scenario.matrices.push_back(generator.generate_features(user));
  }
  MONOHIDS_LOG(Info, "sim") << "scenario built: " << scenario.users.size() << " users, "
                            << config.generator.weeks << " weeks";
  return scenario;
}

}  // namespace monohids::sim
