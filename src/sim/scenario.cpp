#include "sim/scenario.hpp"

#include "sim/analysis_cache.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace monohids::sim {

AnalysisCache& Scenario::analysis() const {
  // A cache created by another Scenario (via copy) references that
  // scenario's matrices; rebuild so lookups always cover *these* matrices.
  if (analysis_cache == nullptr || !analysis_cache->covers(matrices)) {
    analysis_cache = std::make_shared<AnalysisCache>(matrices);
  }
  return *analysis_cache;
}

Scenario build_scenario(const ScenarioConfig& config) {
  Scenario scenario;
  scenario.config = config;
  scenario.users = trace::generate_population(config.population);

  const trace::TraceGenerator generator(config.generator);
  features::PipelineConfig pipeline;
  pipeline.grid = config.generator.grid;
  pipeline.horizon = config.generator.horizon();

  // Each user's matrix is a pure function of (profile, config) via their own
  // derived RNG stream, so users shard freely across threads; parallel_map
  // keeps index order, which keeps the scenario bit-identical to the serial
  // build for any thread count.
  scenario.matrices = util::parallel_map(
      scenario.users.size(),
      [&](std::size_t u) {
        const trace::UserProfile& user = scenario.users[u];
        if (config.fidelity == TraceFidelity::Bins) {
          return generator.generate_features(user);
        }
        // Packets fidelity: stream the user's full trace through the ingest
        // engine in bounded batches — never materializing it.
        features::IngestSession session(user.address, pipeline);
        generator.generate_packets_streamed(user, 0, config.generator.horizon(), session,
                                            config.ingest_batch);
        return session.finish().matrix;
      },
      config.threads);
  MONOHIDS_LOG(Info, "sim") << "scenario built: " << scenario.users.size() << " users, "
                            << config.generator.weeks << " weeks"
                            << (config.fidelity == TraceFidelity::Packets
                                    ? " (packet fidelity)"
                                    : "");
  return scenario;
}

}  // namespace monohids::sim
