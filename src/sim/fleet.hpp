// Fleet mode: bounded-memory scenario pipeline for 100k–1M hosts.
//
// The exact pipeline keeps every user's full sorted week arenas resident —
// fine at the paper's 350 users, hopeless at enterprise fleet scale
// (1M users × 5 weeks × 672 bins × 8 B ≈ 27 GB). Fleet mode streams the
// population through memory one shard at a time and keeps only a compact
// eps-approximate summary per (user, feature, week):
//
//   shard generation (v2 counter-mode renderer by default: waves of users
//     bounded by a matrix budget, flattened (user, bin-tile) items through
//     util::parallel_for; the v1 serial-draw generator per user when
//     configured)
//     → per-user GkSketch of each week's bin counts (stats::GkSketch::
//       from_sorted on the sorted week slice)
//     → an m-point quantile-grid row (GkSketch::quantile_batch through the
//       stats::kernels dispatch), stored as float32
//     → pooled per-(feature, week) sketches folded in user-index order
//       (GkSketch::merge — the fold order, not the shard layout, defines
//       the result, so any shard count produces the same pooled summary).
//
// Everything downstream — assign_thresholds, the heuristics, attacker
// curves, evaluate_policy — runs unmodified: FleetAnalysisCache implements
// hids::DistributionCache by expanding one (feature, week) of the compact
// store into arena-backed EmpiricalDistribution views on demand, keeping at
// most a couple of weeks resident (each expansion is users × m doubles).
//
// Error model (documented bound, asserted by tests and the CI gate): a grid
// row read as an empirical distribution answers rank/CDF queries within
//   eps_total = sketch_epsilon + 1 / (grid_points - 1)
// of the exact per-user distribution (sketch rank error plus grid
// discretization), so a utility U = 1 − [w·FN + (1−w)·FP] built from these
// rates is within 2·eps_total of the exact pipeline's.
//
// Determinism: rows and pooled sketches are bit-identical for every shard
// size and thread count — each user's row depends only on (config, user id)
// and lands in its own slot; the pooled fold is sequential in user order.
// Under the v2 contract this extends to the bin-tile partition and the
// SIMD kernel back-end (the counter-mode draw keys make every bin's words
// independent of how the render work was partitioned).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "hids/evaluator.hpp"
#include "sim/scenario.hpp"
#include "stats/gk_sketch.hpp"

namespace monohids::sim {

struct FleetConfig {
  /// Population + generator parameters (same meaning as ScenarioConfig;
  /// fidelity is ignored — fleet mode always renders bin-level features).
  /// Fleet default: the v2 counter-mode scenario contract
  /// (trace::ScenarioVersion::V2) — every (user, bin) cell owns an
  /// independent Philox stream, so shards parallelize over flattened
  /// (user, bin-tile) work items instead of whole users and the result is
  /// invariant to the tile partition on top of shard size and thread
  /// count. Flip base.generator.scenario_version back to V1 to rebuild
  /// fleet artifacts recorded under the serial-draw contract.
  ScenarioConfig base = v2_base();

  /// The fleet default base config: stock ScenarioConfig under the v2 draw
  /// contract.
  [[nodiscard]] static ScenarioConfig v2_base() {
    ScenarioConfig config;
    config.generator.scenario_version = trace::ScenarioVersion::V2;
    return config;
  }

  /// Users generated and reduced per resident shard. Execution knob: rows
  /// and pooled sketches are bit-identical for every value; peak RSS and
  /// parallelism scale with it.
  std::uint32_t shard_size = 4096;

  /// Rank error of the per-user week sketches (fraction of a week's bins).
  double sketch_epsilon = 1.0 / 48.0;

  /// Points in the per-(user, feature, week) quantile grid: row k holds
  /// quantile(k / (grid_points - 1)), endpoints included, stored float32.
  std::uint32_t grid_points = 24;

  /// Worker threads per shard (0 = auto via MONOHIDS_THREADS).
  unsigned threads = 0;

  void set_seed(std::uint64_t seed) { base.set_seed(seed); }
  void set_users(std::uint32_t n) { base.set_users(n); }
  void set_weeks(std::uint32_t w) { base.set_weeks(w); }

  /// The documented rank-error bound of a grid row vs the exact per-user
  /// distribution: sketch rank error plus grid discretization.
  [[nodiscard]] double rank_error_bound() const noexcept {
    return sketch_epsilon + 1.0 / static_cast<double>(grid_points - 1);
  }
  /// The derived utility error bound: FP and FN are each rank-error-bounded
  /// rates, and U = 1 − [w·FN + (1−w)·FP] mixes them convexly.
  [[nodiscard]] double utility_error_bound() const noexcept {
    return 2.0 * rank_error_bound();
  }
};

class FleetAnalysisCache;

/// The compact fleet dataset: per-user quantile-grid rows and pooled
/// per-(feature, week) sketches. Build with build_fleet_scenario().
class FleetScenario {
 public:
  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint32_t user_count() const noexcept {
    return config_.base.population.user_count;
  }
  [[nodiscard]] std::uint32_t week_count() const noexcept {
    return config_.base.generator.weeks;
  }
  /// Bins per week on the generator grid — the test-week sample count a
  /// console alarm volume must be scaled by (a compact row has grid_points
  /// entries, not bins_per_week).
  [[nodiscard]] std::uint32_t bins_per_week() const noexcept { return bins_per_week_; }
  [[nodiscard]] std::uint32_t grid_points() const noexcept { return config_.grid_points; }

  /// One user's ascending quantile-grid row for (feature, week).
  [[nodiscard]] std::span<const float> row(features::FeatureKind feature,
                                           std::uint32_t week,
                                           std::uint32_t user) const;

  /// The whole user-major row block for (feature, week): user u occupies
  /// [u * grid_points, (u + 1) * grid_points).
  [[nodiscard]] std::span<const float> rows(features::FeatureKind feature,
                                            std::uint32_t week) const;

  /// Pooled sketch over every user's week bins (folded in user-index
  /// order): the fleet console's population-wide distribution of `feature`
  /// in `week`, e.g. for pooled homogeneous thresholds at full rank
  /// resolution instead of through the m-point rows.
  [[nodiscard]] const stats::GkSketch& pooled(features::FeatureKind feature,
                                              std::uint32_t week) const;

  /// Compact store footprint (rows only) and pooled sketch footprint.
  [[nodiscard]] std::size_t store_bytes() const noexcept;
  [[nodiscard]] std::size_t pooled_sketch_bytes() const noexcept;

  /// Lazily-created analysis cache over this fleet (thread-safe after the
  /// first reference; take that from a single thread, like
  /// Scenario::analysis()).
  [[nodiscard]] FleetAnalysisCache& analysis() const;

 private:
  friend FleetScenario build_fleet_scenario(const FleetConfig& config);
  FleetScenario() = default;

  [[nodiscard]] std::size_t slot(features::FeatureKind feature, std::uint32_t week) const;

  FleetConfig config_;
  std::uint32_t bins_per_week_ = 0;
  /// Indexed [feature * weeks + week]; each entry users × grid_points
  /// floats, user-major.
  std::vector<std::vector<float>> store_;
  std::vector<stats::GkSketch> pooled_;
  mutable std::shared_ptr<FleetAnalysisCache> analysis_cache_;
};

/// Generates, sketches and reduces the whole population shard by shard —
/// one shard of full feature matrices resident at a time. Deterministic for
/// every shard size and thread count. Publishes per-shard obs metrics
/// (fleet.shard_latency_ms, fleet.users_total, fleet.sketch_bytes_total,
/// fleet.peak_rss_kib).
[[nodiscard]] FleetScenario build_fleet_scenario(const FleetConfig& config);

/// hids::DistributionCache over a FleetScenario: week() expands one
/// (feature, week) of the compact store into a shared double arena with
/// per-user EmpiricalDistribution views (rank tables included), keeping an
/// LRU of `max_resident_weeks` expansions; thresholds() runs the stock
/// assign_thresholds over those views. Callers' shared_ptrs keep evicted
/// expansions alive, so handing out references is always safe.
class FleetAnalysisCache final : public hids::DistributionCache {
 public:
  explicit FleetAnalysisCache(const FleetScenario& fleet,
                              std::size_t max_resident_weeks = 2);

  [[nodiscard]] std::shared_ptr<const DistributionSet> week(
      features::FeatureKind feature, std::uint32_t week, unsigned threads = 0) override;

  [[nodiscard]] std::shared_ptr<const hids::ThresholdAssignment> thresholds(
      features::FeatureKind feature, std::uint32_t train_week,
      const hids::Grouper& grouper, const hids::ThresholdHeuristic& heuristic,
      const hids::AttackModel* attack, unsigned threads = 0) override;

  /// Attack sweep bounded by the maximum observed training value, exactly
  /// like AnalysisCache::attack_model (but over the compact rows).
  [[nodiscard]] std::shared_ptr<const hids::AttackModel> attack_model(
      features::FeatureKind feature, std::uint32_t train_week,
      std::uint32_t steps = 64, unsigned threads = 0);

 private:
  struct Expansion {
    std::vector<double> arena;  ///< users × grid_points doubles, user-major
    DistributionSet set;        ///< views into arena
  };

  const FleetScenario& fleet_;
  std::size_t max_resident_;
  std::mutex mutex_;
  /// Small LRU, most recent last: (feature index * weeks + week, expansion).
  std::vector<std::pair<std::size_t, std::shared_ptr<Expansion>>> resident_;
};

/// One policy × one train→test round over the fleet, through the stock
/// evaluation pipeline (assign_thresholds + evaluate_policy on the compact
/// views). UserOutcome::weekly_false_alarms is rescaled to real weeks:
/// llround(fp_rate × bins_per_week) — a compact row has grid_points
/// samples, so the stock per-sample count would undercount the console
/// volume ~28x.
[[nodiscard]] hids::PolicyOutcome evaluate_fleet_policy(
    const FleetScenario& fleet, features::FeatureKind feature,
    hids::EvaluationRound round, const hids::Grouper& grouper,
    const hids::ThresholdHeuristic& heuristic, const hids::AttackModel& attack,
    unsigned threads = 0);

}  // namespace monohids::sim
