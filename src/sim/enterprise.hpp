// End-to-end enterprise simulation: the operational path.
//
// The evaluator (hids/evaluator.hpp) computes operating points analytically
// from distributions; this module runs the same week the way a deployment
// would: every host's HostHids scans its observed feature matrix bin by
// bin, alerts queue in the host's AlertBatcher and flush periodically to
// the CentralConsole, optionally with an attack overlaid on the traffic.
// The two paths must agree — benches cross-check console totals against the
// evaluator's counts.
#pragma once

#include <array>
#include <optional>

#include "hids/console.hpp"
#include "hids/detector.hpp"
#include "hids/threshold_policy.hpp"
#include "sim/scenario.hpp"
#include "trace/storm.hpp"

namespace monohids::sim {

struct EnterpriseConfig {
  /// Which week of the scenario the hosts live through.
  std::uint32_t week = 1;

  /// How often each host flushes queued alerts to IT.
  util::Duration batch_interval = util::kMicrosPerHour;

  /// Attack matrix tiled over every host's traffic (empty = benign week).
  std::optional<features::FeatureMatrix> attack;
};

struct EnterpriseResult {
  hids::CentralConsole console;
  std::vector<std::uint64_t> alerts_per_user;
  std::uint64_t total_batches = 0;

  explicit EnterpriseResult(std::uint32_t users, std::uint32_t weeks)
      : console(users, weeks), alerts_per_user(users, 0) {}
};

/// Per-feature threshold assignments for the whole population (one entry
/// per feature; each from assign_thresholds under some policy).
using FeatureAssignments =
    std::array<hids::ThresholdAssignment, features::kFeatureCount>;

/// Builds assignments for every feature under one grouper/heuristic, all
/// trained on `train_week`.
[[nodiscard]] FeatureAssignments assign_all_features(const Scenario& scenario,
                                                     std::uint32_t train_week,
                                                     const hids::Grouper& grouper,
                                                     const hids::ThresholdHeuristic& heuristic);

/// Runs the configured week through every host's HIDS and the central
/// console.
[[nodiscard]] EnterpriseResult run_enterprise_week(const Scenario& scenario,
                                                   const FeatureAssignments& assignments,
                                                   const EnterpriseConfig& config);

}  // namespace monohids::sim
