#include "sim/management_cost.hpp"

#include "util/error.hpp"

namespace monohids::sim {

std::string_view name_of(ReportingMode mode) noexcept {
  switch (mode) {
    case ReportingMode::None: return "local-only";
    case ReportingMode::FullDistribution: return "full-distribution";
    case ReportingMode::QuantileSummary: return "quantile-summary";
  }
  return "unknown";
}

std::vector<ManagementCost> management_costs(const ManagementCostConfig& config,
                                             ReportingMode centralized_mode) {
  MONOHIDS_EXPECT(config.users > 0 && config.features > 0 && config.bins_per_week > 0,
                  "management-cost config must be non-degenerate");
  MONOHIDS_EXPECT(centralized_mode != ReportingMode::None,
                  "centralized policies must ship something");

  const std::uint64_t per_host_per_feature =
      centralized_mode == ReportingMode::FullDistribution
          ? static_cast<std::uint64_t>(config.bins_per_week) * sizeof(double)
          : static_cast<std::uint64_t>(config.summary_points) * sizeof(double) +
                sizeof(std::uint64_t);
  const std::uint64_t uplink = static_cast<std::uint64_t>(config.users) * config.features *
                               per_host_per_feature;
  const std::uint64_t threshold_bytes =
      static_cast<std::uint64_t>(config.features) * sizeof(double);

  std::vector<ManagementCost> costs;

  ManagementCost homogeneous;
  homogeneous.policy = "homogeneous";
  homogeneous.reporting = centralized_mode;
  homogeneous.uplink_bytes_per_week = uplink;
  // one threshold set, broadcast to every host
  homogeneous.downlink_bytes_per_week = threshold_bytes * config.users;
  homogeneous.distinct_configurations = 1;
  costs.push_back(homogeneous);

  ManagementCost full;
  full.policy = "full-diversity";
  full.reporting = ReportingMode::None;  // "all done locally" (paper §4)
  full.uplink_bytes_per_week = 0;
  full.downlink_bytes_per_week = 0;
  full.distinct_configurations = config.users;
  costs.push_back(full);

  ManagementCost partial;
  partial.policy = std::to_string(config.partial_groups) + "-partial";
  partial.reporting = centralized_mode;
  partial.uplink_bytes_per_week = uplink;
  partial.downlink_bytes_per_week = threshold_bytes * config.users;
  partial.distinct_configurations = config.partial_groups;
  costs.push_back(partial);

  return costs;
}

}  // namespace monohids::sim
