// Scenario-configuration serialization.
//
// Experiments are reproducible from (config, seed); this module writes and
// reads the full ScenarioConfig as a simple `key = value` text format so a
// run's exact parameters can be archived next to its outputs and replayed
// later (`build_scenario(parse_scenario_config(file))`). Unknown keys are
// an error — silent typos in archived configs are how irreproducible
// results happen.
#pragma once

#include <string>
#include <string_view>

#include "sim/scenario.hpp"

namespace monohids::sim {

/// Renders every tunable of the config, one `key = value` per line, with
/// `#`-comments grouping the sections.
[[nodiscard]] std::string serialize_scenario_config(const ScenarioConfig& config);

/// Parses the format back. Missing keys keep their defaults; unknown keys,
/// malformed numbers and out-of-range values throw InputError.
[[nodiscard]] ScenarioConfig parse_scenario_config(std::string_view text);

}  // namespace monohids::sim
